// Tests for the model checker (src/mc), the property coverage checker
// (src/pcc) and the case study's level-4 RTL blocks (src/app).

#include <gtest/gtest.h>

#include "app/rtl_blocks.hpp"
#include "mc/mc.hpp"
#include "pcc/pcc.hpp"
#include "rtl/wordops.hpp"
#include "support/test_util.hpp"

namespace mc = symbad::mc;
namespace pcc = symbad::pcc;
namespace app = symbad::app;
namespace rtl = symbad::rtl;

namespace {

/// Saturating 3-bit up-counter with an enable: stops at 7.
rtl::Netlist saturating_counter() {
  rtl::Netlist n{"satcnt"};
  const auto en = n.add_input("en");
  const auto regs = rtl::make_registers(n, "c", 3, 0);
  const auto one = rtl::make_constant(n, 1, 3);
  const auto [inc, carry] = rtl::add(n, regs, one);
  (void)carry;
  const auto at_max = rtl::equal_constant(n, regs, 7);
  const auto hold = n.add_or(at_max, n.add_not(en));
  const auto next = rtl::mux_word(n, hold, regs, inc);
  rtl::connect_registers(n, regs, next);
  rtl::set_output_word(n, "c", regs);
  n.set_output("at_max", at_max);
  n.set_output("en_out", en);
  return n;
}

}  // namespace

// ----------------------------------------------------------------- Expr

TEST(McExpr, EvaluatesAgainstSimulator) {
  const auto n = saturating_counter();
  rtl::Simulator sim{n};
  const auto e = !mc::Expr::signal("at_max") || mc::Expr::signal("c[0]");
  sim.eval();
  EXPECT_TRUE(e.eval(sim, n));  // at reset at_max=0
  EXPECT_NE(e.to_string().find("at_max"), std::string::npos);
}

// ------------------------------------------------------------------- MC

TEST(Mc, InvariantProvedByInduction) {
  // "c <= 7" is trivially true (3 bits) — pick a real invariant instead:
  // at_max -> all bits set. Inductive and true.
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const auto inv = mc::Property::invariant(
      "at_max_means_all_ones",
      mc::Expr::signal("at_max").implies(mc::Expr::signal("c[0]") &&
                                         mc::Expr::signal("c[1]") &&
                                         mc::Expr::signal("c[2]")));
  const auto result = checker.check(inv);
  EXPECT_EQ(result.status, mc::CheckStatus::proved);
}

TEST(Mc, FalseInvariantFalsifiedWithCounterexample) {
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  // "the counter never reaches 7" is false after 7 enabled cycles.
  const auto inv = mc::Property::invariant("never_max", !mc::Expr::signal("at_max"));
  const auto result = checker.check(inv);
  EXPECT_EQ(result.status, mc::CheckStatus::falsified);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_GE(result.counterexample->inputs.size(), 7u);
  // The counterexample must enable the counter at least 7 times.
  int enables = 0;
  for (const auto& frame : result.counterexample->inputs) {
    if (frame.at("en")) ++enables;
  }
  EXPECT_GE(enables, 7);
}

TEST(Mc, NextImplicationProved) {
  // Once saturated, the counter stays saturated (en or not).
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const auto prop = mc::Property::next("saturation_is_sticky",
                                       mc::Expr::signal("at_max"),
                                       mc::Expr::signal("at_max"));
  const auto result = checker.check(prop);
  EXPECT_EQ(result.status, mc::CheckStatus::proved);
}

TEST(Mc, NextImplicationFalsified) {
  // "c[0] stays set" is false: bit 0 toggles.
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const auto prop = mc::Property::next("bit0_sticky", mc::Expr::signal("c[0]"),
                                       mc::Expr::signal("c[0]"));
  const auto result = checker.check(prop);
  EXPECT_EQ(result.status, mc::CheckStatus::falsified);
}

TEST(Mc, BoundedResponse) {
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  // en in 3 consecutive... simpler: from reset, at_max within 6 steps of en
  // is NOT guaranteed (en may drop) -> falsified quickly.
  const auto bad = mc::Property::respond("max_too_soon", mc::Expr::signal("en_out"),
                                         mc::Expr::signal("at_max"), 3);
  EXPECT_EQ(checker.check(bad).status, mc::CheckStatus::falsified);
  // A response that always holds within the bound: c[0] set within 1 cycle of
  // (en & !c[0])? Not guaranteed either. Use a trivially-true response:
  const auto ok = mc::Property::respond("trivial", mc::Expr::signal("at_max"),
                                        mc::Expr::signal("c[0]"), 0);
  EXPECT_EQ(checker.check(ok).status, mc::CheckStatus::no_cex_within_bound);
}

TEST(Mc, ConflictCountsArePerBoundDeltas) {
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};

  // Falsified at bound 7: one delta per bound attempted, the decisive
  // figure is the failing bound's delta, and the total is their sum.
  const auto falsified =
      checker.check(mc::Property::invariant("never_max", !mc::Expr::signal("at_max")));
  ASSERT_EQ(falsified.status, mc::CheckStatus::falsified);
  ASSERT_EQ(falsified.bound_conflicts.size(),
            static_cast<std::size_t>(falsified.bound_used) + 1);
  EXPECT_EQ(falsified.sat_conflicts, falsified.bound_conflicts.back());
  EXPECT_EQ(falsified.induction_conflicts, 0u);
  std::uint64_t sum = 0;
  for (const auto d : falsified.bound_conflicts) sum += d;
  EXPECT_EQ(falsified.total_sat_conflicts, sum);

  // Proved: every BMC bound contributes a delta, induction's delta is
  // accounted separately, and the decisive figure is the induction solve's.
  const auto proved = checker.check(mc::Property::invariant(
      "at_max_means_all_ones",
      mc::Expr::signal("at_max").implies(mc::Expr::signal("c[0]") &&
                                         mc::Expr::signal("c[1]") &&
                                         mc::Expr::signal("c[2]"))));
  ASSERT_EQ(proved.status, mc::CheckStatus::proved);
  EXPECT_EQ(proved.bound_conflicts.size(),
            static_cast<std::size_t>(proved.bound_used) + 1);
  EXPECT_EQ(proved.sat_conflicts, proved.induction_conflicts);
  sum = 0;
  for (const auto d : proved.bound_conflicts) sum += d;
  EXPECT_EQ(proved.total_sat_conflicts, sum + proved.induction_conflicts);
}

TEST(Mc, CounterexampleReplaysOnSimulator) {
  // The lazy incremental unrolling must still produce concrete traces that
  // actually violate the property in cycle-accurate simulation.
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const auto result =
      checker.check(mc::Property::invariant("never_max", !mc::Expr::signal("at_max")));
  ASSERT_EQ(result.status, mc::CheckStatus::falsified);
  ASSERT_TRUE(result.counterexample.has_value());

  rtl::Simulator sim{n};
  bool violated = false;
  for (const auto& frame : result.counterexample->inputs) {
    for (const auto& [name, value] : frame) sim.set_input(name, value);
    sim.eval();
    if (sim.output("at_max")) violated = true;
    sim.step();
  }
  EXPECT_TRUE(violated);
}

// ------------------------------------------------------- case-study RTL

TEST(RootRtl, MatchesReferenceForSampledOperands) {
  const auto n = app::build_root_rtl();
  rtl::Simulator sim{n};
  rtl::Word op;
  for (int i = 0; i < 16; ++i) op.bits.push_back(n.input("op[" + std::to_string(i) + "]"));

  // Corner cases plus a deterministic random sample of the operand space.
  std::vector<std::uint32_t> operands = {0u,   1u,   2u,    9u,    100u,
                                         255u, 256u, 1000u, 4095u, 65535u};
  auto rng = symbad::test::rng("root_rtl_operands");
  for (int i = 0; i < 24; ++i) {
    operands.push_back(static_cast<std::uint32_t>(rng.below(65536)));
  }
  for (std::uint32_t value : operands) {
    sim.set_input("start", true);
    rtl::drive_word(sim, op, value);
    sim.step();  // load
    sim.set_input("start", false);
    for (int c = 0; c < app::kRootLatencyCycles; ++c) sim.step();
    EXPECT_TRUE(sim.output("done")) << value;
    rtl::Word result;
    for (int i = 0; i < 12; ++i) {
      result.bits.push_back(n.output("result[" + std::to_string(i) + "]"));
    }
    EXPECT_EQ(rtl::read_word(sim, result),
              app::root_reference(static_cast<std::uint16_t>(value)))
        << "operand " << value;
  }
}

TEST(DistanceRtl, AccumulatesAbsoluteDifferences) {
  const auto n = app::build_distance_rtl(8, 16);
  rtl::Simulator sim{n};
  rtl::Word a;
  rtl::Word b;
  rtl::Word acc;
  for (int i = 0; i < 8; ++i) {
    a.bits.push_back(n.input("a[" + std::to_string(i) + "]"));
    b.bits.push_back(n.input("b[" + std::to_string(i) + "]"));
  }
  for (int i = 0; i < 16; ++i) {
    acc.bits.push_back(n.output("acc[" + std::to_string(i) + "]"));
  }
  sim.set_input("clear", true);
  sim.set_input("valid", false);
  sim.step();
  sim.set_input("clear", false);
  sim.set_input("valid", true);
  std::uint64_t expected = 0;
  const std::pair<std::uint64_t, std::uint64_t> samples[] = {
      {10, 3}, {3, 10}, {255, 0}, {128, 128}, {77, 200}};
  for (const auto& [va, vb] : samples) {
    rtl::drive_word(sim, a, va);
    rtl::drive_word(sim, b, vb);
    sim.step();
    expected += va > vb ? va - vb : vb - va;
    EXPECT_EQ(rtl::read_word(sim, acc), expected);
  }
  EXPECT_FALSE(sim.output("overflow"));
  sim.set_input("clear", true);
  sim.step();
  EXPECT_EQ(rtl::read_word(sim, acc), 0u);
}

TEST(WrapperFsm, WalksThroughProtocol) {
  const auto n = app::build_wrapper_fsm();
  rtl::Simulator sim{n};
  EXPECT_FALSE(sim.output("busy"));
  sim.set_input("start", true);
  sim.step();
  sim.set_input("start", false);
  EXPECT_TRUE(sim.output("busy"));
  EXPECT_TRUE(sim.output("bus_req"));  // LOAD
  sim.set_input("xfer_done", true);
  sim.step();
  sim.set_input("xfer_done", false);
  EXPECT_TRUE(sim.output("dev_start"));  // EXEC
  EXPECT_FALSE(sim.output("bus_req"));
  sim.set_input("dev_done", true);
  sim.step();
  sim.set_input("dev_done", false);
  EXPECT_TRUE(sim.output("bus_req"));  // STORE
  sim.set_input("xfer_done", true);
  sim.eval();
  EXPECT_TRUE(sim.output("ack"));
  sim.step();
  sim.set_input("xfer_done", false);
  sim.eval();
  EXPECT_FALSE(sim.output("busy"));  // back to IDLE
}

TEST(WrapperFsm, SafetyPropertiesProved) {
  const auto n = app::build_wrapper_fsm();
  const mc::ModelChecker checker{n};
  // The device never starts while the bus is being used by the wrapper.
  const auto exclusive = mc::Property::invariant(
      "no_dev_start_during_bus_req",
      !(mc::Expr::signal("dev_start") && mc::Expr::signal("bus_req")));
  EXPECT_EQ(checker.check(exclusive).status, mc::CheckStatus::proved);
  // An ack only happens while busy.
  const auto ack_busy = mc::Property::invariant(
      "ack_implies_busy", mc::Expr::signal("ack").implies(mc::Expr::signal("busy")));
  EXPECT_EQ(checker.check(ack_busy).status, mc::CheckStatus::proved);
}

TEST(RootRtl, DoneStableInvariant) {
  const auto n = app::build_root_rtl();
  const mc::ModelChecker checker{n};
  // busy and done are never asserted together... done rises exactly when
  // busy drops; they can overlap for zero cycles by construction:
  const auto prop = mc::Property::invariant(
      "busy_xor_done_weak",
      !(mc::Expr::signal("busy") && mc::Expr::signal("done")));
  const auto result = checker.check(prop, {10, 3});
  // This invariant is in fact true (done set only when finishing clears
  // busy); accept proof or bounded-clean, reject counterexamples.
  EXPECT_NE(result.status, mc::CheckStatus::falsified);
}

// ------------------------------------------------------------------ PCC

TEST(Pcc, ExtendedPropertySuiteIsProvable) {
  const auto n = app::build_wrapper_fsm();
  const mc::ModelChecker checker{n};
  for (const auto& prop : app::wrapper_properties_extended()) {
    const auto result = checker.check(prop, {12, 4});
    EXPECT_NE(result.status, mc::CheckStatus::falsified) << prop.name;
  }
}

TEST(Pcc, ExtendedPropertySetCoversMostWrapperFaults) {
  const auto n = app::build_wrapper_fsm();
  pcc::PccOptions options;
  options.bmc_bound = 8;
  const auto report =
      pcc::check_property_coverage(n, app::wrapper_properties_extended(), options);
  EXPECT_GT(report.total_faults, 10u);
  EXPECT_GT(report.coverage_percent(), 60.0);
  EXPECT_EQ(report.detected, report.detected_by_simulation + report.detected_by_bmc);
}

TEST(Pcc, RicherPropertySetScoresHigher) {
  // The PCC workflow of §3.4: prove, measure coverage, find it lacking,
  // add properties, measure again — coverage must increase.
  const auto n = app::build_wrapper_fsm();
  pcc::PccOptions options;
  options.bmc_bound = 6;
  const auto weak_report =
      pcc::check_property_coverage(n, app::wrapper_properties_initial(), options);
  const auto strong_report =
      pcc::check_property_coverage(n, app::wrapper_properties_extended(), options);
  EXPECT_GE(strong_report.coverage_percent(), weak_report.coverage_percent());
  EXPECT_GT(strong_report.detected, weak_report.detected);
  EXPECT_FALSE(weak_report.undetected.empty());
}

TEST(Pcc, FaultSamplingCapRespected) {
  const auto n = app::build_distance_rtl(6, 10);
  std::vector<mc::Property> properties;
  properties.push_back(mc::Property::invariant(
      "overflow_implies_acc_msb_or_any",
      mc::Expr::signal("overflow").implies(mc::Expr::constant(true))));
  pcc::PccOptions options;
  options.max_faults = 20;
  options.bmc_bound = 4;
  const auto report = pcc::check_property_coverage(n, properties, options);
  EXPECT_EQ(report.total_faults, 20u);
}

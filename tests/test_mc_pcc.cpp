// Tests for the model checker (src/mc), the property coverage checker
// (src/pcc) and the case study's level-4 RTL blocks (src/app).

#include <gtest/gtest.h>

#include <cstdint>

#include "app/rtl_blocks.hpp"
#include "gen/gen.hpp"
#include "mc/mc.hpp"
#include "pcc/pcc.hpp"
#include "rtl/wordops.hpp"
#include "sat/solver.hpp"
#include "support/test_util.hpp"

namespace gen = symbad::gen;
namespace mc = symbad::mc;
namespace pcc = symbad::pcc;
namespace app = symbad::app;
namespace rtl = symbad::rtl;
namespace sat = symbad::sat;

namespace {

/// Saturating 3-bit up-counter with an enable: stops at 7.
rtl::Netlist saturating_counter() {
  rtl::Netlist n{"satcnt"};
  const auto en = n.add_input("en");
  const auto regs = rtl::make_registers(n, "c", 3, 0);
  const auto one = rtl::make_constant(n, 1, 3);
  const auto [inc, carry] = rtl::add(n, regs, one);
  (void)carry;
  const auto at_max = rtl::equal_constant(n, regs, 7);
  const auto hold = n.add_or(at_max, n.add_not(en));
  const auto next = rtl::mux_word(n, hold, regs, inc);
  rtl::connect_registers(n, regs, next);
  rtl::set_output_word(n, "c", regs);
  n.set_output("at_max", at_max);
  n.set_output("en_out", en);
  return n;
}

}  // namespace

// ----------------------------------------------------------------- Expr

TEST(McExpr, EvaluatesAgainstSimulator) {
  const auto n = saturating_counter();
  rtl::Simulator sim{n};
  const auto e = !mc::Expr::signal("at_max") || mc::Expr::signal("c[0]");
  sim.eval();
  EXPECT_TRUE(e.eval(sim, n));  // at reset at_max=0
  EXPECT_NE(e.to_string().find("at_max"), std::string::npos);
}

// ------------------------------------------------------------------- MC

TEST(Mc, InvariantProvedByInduction) {
  // "c <= 7" is trivially true (3 bits) — pick a real invariant instead:
  // at_max -> all bits set. Inductive and true.
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const auto inv = mc::Property::invariant(
      "at_max_means_all_ones",
      mc::Expr::signal("at_max").implies(mc::Expr::signal("c[0]") &&
                                         mc::Expr::signal("c[1]") &&
                                         mc::Expr::signal("c[2]")));
  const auto result = checker.check(inv);
  EXPECT_EQ(result.status, mc::CheckStatus::proved);
}

TEST(Mc, FalseInvariantFalsifiedWithCounterexample) {
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  // "the counter never reaches 7" is false after 7 enabled cycles.
  const auto inv = mc::Property::invariant("never_max", !mc::Expr::signal("at_max"));
  const auto result = checker.check(inv);
  EXPECT_EQ(result.status, mc::CheckStatus::falsified);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_GE(result.counterexample->inputs.size(), 7u);
  // The counterexample must enable the counter at least 7 times.
  int enables = 0;
  for (const auto& frame : result.counterexample->inputs) {
    if (frame.at("en")) ++enables;
  }
  EXPECT_GE(enables, 7);
}

TEST(Mc, NextImplicationProved) {
  // Once saturated, the counter stays saturated (en or not).
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const auto prop = mc::Property::next("saturation_is_sticky",
                                       mc::Expr::signal("at_max"),
                                       mc::Expr::signal("at_max"));
  const auto result = checker.check(prop);
  EXPECT_EQ(result.status, mc::CheckStatus::proved);
}

TEST(Mc, NextImplicationFalsified) {
  // "c[0] stays set" is false: bit 0 toggles.
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const auto prop = mc::Property::next("bit0_sticky", mc::Expr::signal("c[0]"),
                                       mc::Expr::signal("c[0]"));
  const auto result = checker.check(prop);
  EXPECT_EQ(result.status, mc::CheckStatus::falsified);
}

TEST(Mc, BoundedResponse) {
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  // en in 3 consecutive... simpler: from reset, at_max within 6 steps of en
  // is NOT guaranteed (en may drop) -> falsified quickly.
  const auto bad = mc::Property::respond("max_too_soon", mc::Expr::signal("en_out"),
                                         mc::Expr::signal("at_max"), 3);
  EXPECT_EQ(checker.check(bad).status, mc::CheckStatus::falsified);
  // A response that always holds within the bound: c[0] set within 1 cycle of
  // (en & !c[0])? Not guaranteed either. Use a trivially-true response:
  const auto ok = mc::Property::respond("trivial", mc::Expr::signal("at_max"),
                                        mc::Expr::signal("c[0]"), 0);
  EXPECT_EQ(checker.check(ok).status, mc::CheckStatus::no_cex_within_bound);
}

TEST(Mc, ConflictCountsArePerBoundDeltas) {
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};

  // Falsified at bound 7: one delta per bound attempted, the decisive
  // figure is the failing bound's delta, and the total is their sum.
  const auto falsified =
      checker.check(mc::Property::invariant("never_max", !mc::Expr::signal("at_max")));
  ASSERT_EQ(falsified.status, mc::CheckStatus::falsified);
  ASSERT_EQ(falsified.bound_conflicts.size(),
            static_cast<std::size_t>(falsified.bound_used) + 1);
  EXPECT_EQ(falsified.sat_conflicts, falsified.bound_conflicts.back());
  EXPECT_EQ(falsified.induction_conflicts, 0u);
  std::uint64_t sum = 0;
  for (const auto d : falsified.bound_conflicts) sum += d;
  EXPECT_EQ(falsified.total_sat_conflicts, sum);

  // Proved: every BMC bound contributes a delta, induction's delta is
  // accounted separately, and the decisive figure is the induction solve's.
  const auto proved = checker.check(mc::Property::invariant(
      "at_max_means_all_ones",
      mc::Expr::signal("at_max").implies(mc::Expr::signal("c[0]") &&
                                         mc::Expr::signal("c[1]") &&
                                         mc::Expr::signal("c[2]"))));
  ASSERT_EQ(proved.status, mc::CheckStatus::proved);
  EXPECT_EQ(proved.bound_conflicts.size(),
            static_cast<std::size_t>(proved.bound_used) + 1);
  EXPECT_EQ(proved.sat_conflicts, proved.induction_conflicts);
  sum = 0;
  for (const auto d : proved.bound_conflicts) sum += d;
  EXPECT_EQ(proved.total_sat_conflicts, sum + proved.induction_conflicts);
}

TEST(Mc, CounterexampleReplaysOnSimulator) {
  // The lazy incremental unrolling must still produce concrete traces that
  // actually violate the property in cycle-accurate simulation.
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const auto result =
      checker.check(mc::Property::invariant("never_max", !mc::Expr::signal("at_max")));
  ASSERT_EQ(result.status, mc::CheckStatus::falsified);
  ASSERT_TRUE(result.counterexample.has_value());

  rtl::Simulator sim{n};
  bool violated = false;
  for (const auto& frame : result.counterexample->inputs) {
    for (const auto& [name, value] : frame) sim.set_input(name, value);
    sim.eval();
    if (sim.output("at_max")) violated = true;
    sim.step();
  }
  EXPECT_TRUE(violated);
}

// ------------------------------------------------- cone of influence

namespace {

/// Every seed property of the saturating-counter fixture, all three kinds.
std::vector<mc::Property> counter_properties() {
  std::vector<mc::Property> props;
  props.push_back(mc::Property::invariant(
      "at_max_means_all_ones",
      mc::Expr::signal("at_max").implies(mc::Expr::signal("c[0]") &&
                                         mc::Expr::signal("c[1]") &&
                                         mc::Expr::signal("c[2]"))));
  props.push_back(mc::Property::invariant("never_max", !mc::Expr::signal("at_max")));
  props.push_back(mc::Property::next("saturation_is_sticky", mc::Expr::signal("at_max"),
                                     mc::Expr::signal("at_max")));
  props.push_back(mc::Property::next("bit0_sticky", mc::Expr::signal("c[0]"),
                                     mc::Expr::signal("c[0]")));
  props.push_back(mc::Property::respond("max_too_soon", mc::Expr::signal("en_out"),
                                        mc::Expr::signal("at_max"), 3));
  props.push_back(mc::Property::respond("trivial", mc::Expr::signal("at_max"),
                                        mc::Expr::signal("c[0]"), 0));
  return props;
}

/// Checks one property with the cone reduction on and off and requires
/// verdict, bound_used and (canonical) counterexample to be bit-identical.
void expect_coi_equivalent(const mc::ModelChecker& checker, const mc::Property& prop,
                           const std::map<symbad::rtl::Net, bool>& faults,
                           mc::ModelChecker::Options options) {
  options.cone_of_influence = true;
  const auto with_cone = checker.check_with_faults(prop, faults, options);
  options.cone_of_influence = false;
  const auto without = checker.check_with_faults(prop, faults, options);
  EXPECT_EQ(with_cone.status, without.status) << prop.name;
  EXPECT_EQ(with_cone.bound_used, without.bound_used) << prop.name;
  ASSERT_EQ(with_cone.counterexample.has_value(), without.counterexample.has_value())
      << prop.name;
  if (with_cone.counterexample.has_value()) {
    EXPECT_EQ(with_cone.counterexample->inputs, without.counterexample->inputs)
        << prop.name;
  }
  // The reduction may only shrink the encoding, never grow it.
  EXPECT_LE(with_cone.solver_variables, without.solver_variables) << prop.name;
  EXPECT_LE(with_cone.solver_clauses, without.solver_clauses) << prop.name;
}

}  // namespace

TEST(McCoi, EquivalentOnEverySeedProperty) {
  // Acceptance gate of the COI tentpole: for every seed property (counter,
  // wrapper FSM, ROOT core), verdict, bound_used and counterexample are
  // identical with the reduction enabled vs disabled.
  {
    const auto counter = saturating_counter();
    const mc::ModelChecker checker{counter};
    for (const auto& prop : counter_properties()) {
      expect_coi_equivalent(checker, prop, {}, {});
    }
  }
  {
    const auto fsm = app::build_wrapper_fsm();
    const mc::ModelChecker checker{fsm};
    for (const auto& prop : app::wrapper_properties_extended()) {
      expect_coi_equivalent(checker, prop, {}, {12, 4});
    }
  }
  {
    const auto root = app::build_root_rtl();
    const mc::ModelChecker checker{root};
    const auto prop = mc::Property::invariant(
        "busy_xor_done_weak",
        !(mc::Expr::signal("busy") && mc::Expr::signal("done")));
    expect_coi_equivalent(checker, prop, {}, {10, 3});
  }
}

TEST(McCoi, EquivalentUnderInjectedFaults) {
  // The fault variants PCC exercises: stuck-at faults on internal wrapper
  // nets, both polarities, checked with the cone on and off.
  const auto fsm = app::build_wrapper_fsm();
  const mc::ModelChecker checker{fsm};
  const auto props = app::wrapper_properties_initial();
  std::vector<symbad::rtl::Net> sites;
  for (std::size_t i = 0; i < fsm.gate_count() && sites.size() < 4; ++i) {
    const auto kind = fsm.gate(static_cast<symbad::rtl::Net>(i)).kind;
    if (kind == symbad::rtl::GateKind::and_gate || kind == symbad::rtl::GateKind::dff) {
      sites.push_back(static_cast<symbad::rtl::Net>(i));
    }
  }
  ASSERT_GE(sites.size(), 2u);
  for (const auto site : sites) {
    for (const bool stuck_to : {false, true}) {
      const std::map<symbad::rtl::Net, bool> faults{{site, stuck_to}};
      for (const auto& prop : props) {
        expect_coi_equivalent(checker, prop, faults, {6, 3});
      }
    }
  }
}

TEST(McCoi, ReducesEncodingWhenPropertyObservesOutputSubset) {
  // The ROOT core has a wide result datapath; a property over the control
  // outputs only (busy/done — a strict subset of the outputs) must drop the
  // datapath cone from the encoding.
  const auto root = app::build_root_rtl();
  ASSERT_GT(root.outputs().size(), 2u);  // busy, done, result[11:0]
  const mc::ModelChecker checker{root};
  const auto prop = mc::Property::invariant(
      "busy_done_exclusive", !(mc::Expr::signal("busy") && mc::Expr::signal("done")));
  mc::ModelChecker::Options options{10, 3};
  options.cone_of_influence = true;
  const auto reduced = checker.check(prop, options);
  options.cone_of_influence = false;
  const auto full = checker.check(prop, options);
  EXPECT_EQ(reduced.status, full.status);
  EXPECT_LT(reduced.solver_variables, full.solver_variables);
  EXPECT_LT(reduced.solver_clauses, full.solver_clauses);
}

// ----------------------------------------------------- arena compaction

namespace {

/// Reduction schedule that keeps the solver's learned DB under constant
/// churn: a reduction after every conflict, keeping nothing by glue. This
/// maximises arena garbage, so compaction (when enabled) actually runs.
sat::Solver::ReduceOptions aggressive_reduce(sat::CompactMode compact) {
  sat::Solver::ReduceOptions r;
  r.base = 1;
  r.increment = 1;
  r.keep_lbd = 0;
  r.compact = compact;
  return r;
}

/// Checks one property with arena compaction forced on every reduction vs
/// disabled and requires verdict, bound_used, canonical counterexample and
/// the total conflict count to be bit-identical — compaction must be pure
/// relocation, invisible to the search. Returns the forced run's compaction
/// count so callers can assert the mode actually exercised the mover.
std::uint64_t expect_compact_equivalent(const mc::ModelChecker& checker,
                                        const mc::Property& prop,
                                        mc::ModelChecker::Options options) {
  options.sat_reduce = aggressive_reduce(sat::CompactMode::always);
  const auto forced = checker.check(prop, options);
  options.sat_reduce = aggressive_reduce(sat::CompactMode::never);
  const auto never = checker.check(prop, options);
  EXPECT_EQ(forced.status, never.status) << prop.name;
  EXPECT_EQ(forced.bound_used, never.bound_used) << prop.name;
  EXPECT_EQ(forced.total_sat_conflicts, never.total_sat_conflicts) << prop.name;
  EXPECT_EQ(forced.counterexample.has_value(), never.counterexample.has_value())
      << prop.name;
  if (forced.counterexample.has_value() && never.counterexample.has_value()) {
    EXPECT_EQ(forced.counterexample->inputs, never.counterexample->inputs)
        << prop.name;
  }
  // With compaction off the arena only ever grows; forced compaction must
  // never leave it larger, and the never-mode must not have compacted.
  EXPECT_LE(forced.solver_arena_bytes, never.solver_arena_bytes) << prop.name;
  EXPECT_EQ(never.solver_compactions, 0u) << prop.name;
  return forced.solver_compactions;
}

}  // namespace

TEST(McCompact, ForcedVsNeverIsBitIdenticalOnSeedProperties) {
  // Acceptance gate of the clause-arena tentpole at the mc level: for every
  // seed property of the counter and wrapper fixtures, forcing a compaction
  // on every DB reduction changes nothing observable — verdict, bound,
  // counterexample and conflict count all match a compaction-free run.
  std::uint64_t compactions = 0;
  {
    const auto counter = saturating_counter();
    const mc::ModelChecker checker{counter};
    for (const auto& prop : counter_properties()) {
      compactions += expect_compact_equivalent(checker, prop, {});
    }
  }
  {
    const auto fsm = app::build_wrapper_fsm();
    const mc::ModelChecker checker{fsm};
    for (const auto& prop : app::wrapper_properties_extended()) {
      compactions += expect_compact_equivalent(checker, prop, {12, 4});
    }
  }
  // The suite as a whole must actually have compacted — otherwise the test
  // only compared two identical no-op configurations.
  EXPECT_GT(compactions, 0u);
}

TEST(McCompact, ForcedVsNeverIsBitIdenticalOnRandomNetlists) {
  // Fuzz round: random mixed-logic netlists (every gate kind, registers,
  // deep output cones) checked for a falsifiable and a typically-provable
  // property under both compaction modes. Seeded via SYMBAD_TEST_SEED.
  auto rng = symbad::test::rng("mc_compact_fuzz");
  for (int round = 0; round < 4; ++round) {
    // redundancy = 0: plain mixed logic, matching this test's original
    // hand-rolled builder (compaction identity must not rely on the
    // optimizer having anything to chew on).
    const auto n = gen::random_netlist(rng, {4, 3, 40, 2, 0.0},
                                       "fuzz" + std::to_string(round));

    const mc::ModelChecker checker{n};
    expect_compact_equivalent(
        checker, mc::Property::invariant("o0_never", !mc::Expr::signal("o0")), {8, 2});
    expect_compact_equivalent(
        checker,
        mc::Property::next("o0_sticky", mc::Expr::signal("o0"), mc::Expr::signal("o1")),
        {8, 2});
  }
}

TEST(McCompact, GeneratedTierNetlistsCompactBitIdentical) {
  // Compaction purity on generator-scale designs: a couple of seeds per size
  // tier from the shared sweep stream (the full-width differential lives in
  // test_opt; this pins the clause mover against 300+-gate cones too).
  gen::SweepConfig cfg;
  cfg.count = 2;
  for (const auto tier : cfg.tiers()) {
    for (int i = 0; i < cfg.count; ++i) {
      const std::uint64_t seed = cfg.seed_at(i);
      const auto n = gen::generate_netlist(seed, tier);
      const mc::ModelChecker checker{n};
      const auto o0 = mc::Expr::signal("o0");
      const auto o1 = mc::Expr::signal("o1");
      expect_compact_equivalent(
          checker, mc::Property::invariant("inv_nand", !(o0 && o1)), {4, 2});
    }
  }
}

// ----------------------------------------------------- encode cache

TEST(McEncodeCache, ReEncodingSameNodeAndFrameAddsNothing) {
  // Regression for the duplicate aux-var/clause leak: before the cache,
  // every `Expr::encode` of the same node at the same frame minted fresh
  // Tseitin variables and clauses (O(bound^2) growth for bounded_response).
  const auto n = saturating_counter();
  symbad::sat::Solver solver;
  rtl::CnfEncoder encoder{n, solver};
  encoder.begin_chain({});
  mc::EncodeCache cache;
  const auto expr = mc::Expr::signal("at_max") &&
                    (mc::Expr::signal("c[0]") || !mc::Expr::signal("c[1]"));

  const auto first = expr.encode(encoder, 2, cache);
  const int vars_after_first = solver.variable_count();
  const std::size_t clauses_after_first = solver.problem_clause_count();
  const auto second = expr.encode(encoder, 2, cache);
  EXPECT_EQ(first, second);
  EXPECT_EQ(solver.variable_count(), vars_after_first);
  EXPECT_EQ(solver.problem_clause_count(), clauses_after_first);
  // A different frame is a different cache entry.
  const auto deeper = expr.encode(encoder, 3, cache);
  EXPECT_NE(deeper, first);
  EXPECT_GT(solver.variable_count(), vars_after_first);
}

TEST(McEncodeCache, BoundedResponseSolverGrowthIsLinearInBound) {
  // bounded_response at bound i re-visits the consequent at frames i..i+k;
  // without the cache every deeper bound re-Tseitins those nodes afresh and
  // the encoding grows quadratically. With it, each extra bound pays a
  // constant: one new frame plus one new (node, frame) set — so the clause
  // and variable growth per 8 bounds is *exactly* the same at any depth.
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const auto prop = mc::Property::respond(
      "max_settles", mc::Expr::signal("at_max"),
      mc::Expr::signal("c[0]") && mc::Expr::signal("c[1]"), 2);
  auto clean_check = [&](int max_bound) {
    mc::ModelChecker::Options options;
    options.max_bound = max_bound;
    const auto result = checker.check(prop, options);
    EXPECT_EQ(result.status, mc::CheckStatus::no_cex_within_bound);
    return result;
  };
  const auto r8 = clean_check(8);
  const auto r16 = clean_check(16);
  const auto r24 = clean_check(24);
  EXPECT_EQ(r24.solver_clauses - r16.solver_clauses,
            r16.solver_clauses - r8.solver_clauses);
  EXPECT_EQ(r24.solver_variables - r16.solver_variables,
            r16.solver_variables - r8.solver_variables);
}

// ------------------------------------------------- portfolio check_all

TEST(McPortfolio, CheckAllMatchesIndividualChecks) {
  // The portfolio runs every property on one solver; verdicts, bounds and
  // canonical counterexamples must match per-property `check` exactly.
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const auto props = counter_properties();
  const mc::ModelChecker::Options options;
  const auto multi = checker.check_all(props, options);
  ASSERT_EQ(multi.results.size(), props.size());
  for (std::size_t i = 0; i < props.size(); ++i) {
    const auto single = checker.check(props[i], options);
    const auto& shared = multi.results[i];
    EXPECT_EQ(shared.status, single.status) << props[i].name;
    EXPECT_EQ(shared.bound_used, single.bound_used) << props[i].name;
    ASSERT_EQ(shared.counterexample.has_value(), single.counterexample.has_value())
        << props[i].name;
    if (shared.counterexample.has_value()) {
      EXPECT_EQ(shared.counterexample->inputs, single.counterexample->inputs)
          << props[i].name;
    }
  }
  EXPECT_EQ(multi.count(mc::CheckStatus::falsified), 3u);
  EXPECT_EQ(multi.count(mc::CheckStatus::proved), 2u);
  EXPECT_EQ(multi.count(mc::CheckStatus::no_cex_within_bound), 1u);
  EXPECT_GT(multi.frames_encoded, 0u);
  // One portfolio solve per bound serves all surviving properties: far
  // fewer solves than six independent 20-bound sweeps would need; the
  // shared accounting has one entry per bound actually attempted.
  EXPECT_LE(multi.bound_conflicts.size(),
            static_cast<std::size_t>(options.max_bound) + 1);
}

TEST(McPortfolio, CheckAllOnWrapperSuiteProvesEverything) {
  const auto fsm = app::build_wrapper_fsm();
  const mc::ModelChecker checker{fsm};
  const auto multi = checker.check_all(app::wrapper_properties_extended(), {12, 4});
  for (const auto& r : multi.results) {
    EXPECT_NE(r.status, mc::CheckStatus::falsified);
  }
  EXPECT_EQ(multi.count(mc::CheckStatus::falsified), 0u);
}

TEST(McPortfolio, CheckAllConeEquivalence) {
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const auto props = counter_properties();
  mc::ModelChecker::Options options;
  options.cone_of_influence = true;
  const auto reduced = checker.check_all(props, options);
  options.cone_of_influence = false;
  const auto full = checker.check_all(props, options);
  ASSERT_EQ(reduced.results.size(), full.results.size());
  for (std::size_t i = 0; i < props.size(); ++i) {
    EXPECT_EQ(reduced.results[i].status, full.results[i].status) << props[i].name;
    EXPECT_EQ(reduced.results[i].bound_used, full.results[i].bound_used)
        << props[i].name;
    ASSERT_EQ(reduced.results[i].counterexample.has_value(),
              full.results[i].counterexample.has_value());
    if (reduced.results[i].counterexample.has_value()) {
      EXPECT_EQ(reduced.results[i].counterexample->inputs,
                full.results[i].counterexample->inputs)
          << props[i].name;
    }
  }
  EXPECT_LE(reduced.solver_variables, full.solver_variables);
}

TEST(McPortfolio, EmptyPropertyListIsEmptyResult) {
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const auto multi = checker.check_all({});
  EXPECT_TRUE(multi.results.empty());
  EXPECT_EQ(multi.total_sat_conflicts, 0u);
}

// ------------------------------------- counterexample edge cases

TEST(McCex, BoundedResponseFalsificationSpansResponseWindow) {
  // "en leads to at_max within 3" is violated from reset: the violation at
  // bound 0 spans frames 0..3 (`last = i + response_bound`), so the trace
  // must cover the whole response window, not just the failing bound.
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const auto prop = mc::Property::respond("max_too_soon", mc::Expr::signal("en_out"),
                                          mc::Expr::signal("at_max"), 3);
  const auto result = checker.check(prop);
  ASSERT_EQ(result.status, mc::CheckStatus::falsified);
  ASSERT_TRUE(result.counterexample.has_value());
  const auto& inputs = result.counterexample->inputs;
  ASSERT_EQ(inputs.size(),
            static_cast<std::size_t>(result.bound_used + prop.response_bound + 1));

  // Replay: some cycle t has en asserted while at_max stays low through
  // t..t+3 — the bounded-response violation, observed in simulation.
  rtl::Simulator sim{n};
  std::vector<bool> p_trace;
  std::vector<bool> q_trace;
  for (const auto& frame : inputs) {
    for (const auto& [name, value] : frame) sim.set_input(name, value);
    sim.eval();
    p_trace.push_back(sim.output("en_out"));
    q_trace.push_back(sim.output("at_max"));
    sim.step();
  }
  bool violated = false;
  for (std::size_t t = 0; t + 3 < p_trace.size(); ++t) {
    if (!p_trace[t]) continue;
    bool responded = false;
    for (std::size_t d = t; d <= t + 3; ++d) responded = responded || q_trace[d];
    violated = violated || !responded;
  }
  EXPECT_TRUE(violated);
}

TEST(McCex, FaultyCounterexampleReplaysUnderInjectedFault) {
  // Stuck-at-0 on the counter's `hold` mux select (the OR of at_max and
  // !en) makes the counter free-run: "never_max" fails even with `en`
  // deasserted. The extracted trace must reproduce the violation on a
  // simulator carrying the same injected fault.
  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const symbad::rtl::Net at_max = n.output("at_max");
  symbad::rtl::Net hold = -1;
  for (std::size_t i = 0; i < n.gate_count(); ++i) {
    const auto& g = n.gate(static_cast<symbad::rtl::Net>(i));
    if (g.kind == symbad::rtl::GateKind::or_gate && g.a == at_max) {
      hold = static_cast<symbad::rtl::Net>(i);
      break;
    }
  }
  ASSERT_GE(hold, 0);
  const std::map<symbad::rtl::Net, bool> faults{{hold, false}};
  const auto prop = mc::Property::invariant("never_max", !mc::Expr::signal("at_max"));
  const auto result = checker.check_with_faults(prop, faults, {});
  ASSERT_EQ(result.status, mc::CheckStatus::falsified);
  ASSERT_TRUE(result.counterexample.has_value());
  // The canonical trace is all-false: the fault itself drives the counter.
  for (const auto& frame : result.counterexample->inputs) {
    for (const auto& [name, value] : frame) EXPECT_FALSE(value) << name;
  }

  rtl::Simulator sim{n};
  sim.inject_stuck_at(hold, false);
  bool violated = false;
  for (const auto& frame : result.counterexample->inputs) {
    for (const auto& [name, value] : frame) sim.set_input(name, value);
    sim.eval();
    violated = violated || !prop.antecedent.eval(sim, n);
    sim.step();
  }
  EXPECT_TRUE(violated);

  // Control: without the fault the same all-false trace is innocent.
  rtl::Simulator clean{n};
  bool clean_violated = false;
  for (const auto& frame : result.counterexample->inputs) {
    for (const auto& [name, value] : frame) clean.set_input(name, value);
    clean.eval();
    clean_violated = clean_violated || !prop.antecedent.eval(clean, n);
    clean.step();
  }
  EXPECT_FALSE(clean_violated);
}

// ------------------------------------------------------- case-study RTL

TEST(RootRtl, MatchesReferenceForSampledOperands) {
  const auto n = app::build_root_rtl();
  rtl::Simulator sim{n};
  rtl::Word op;
  for (int i = 0; i < 16; ++i) op.bits.push_back(n.input("op[" + std::to_string(i) + "]"));

  // Corner cases plus a deterministic random sample of the operand space.
  std::vector<std::uint32_t> operands = {0u,   1u,   2u,    9u,    100u,
                                         255u, 256u, 1000u, 4095u, 65535u};
  auto rng = symbad::test::rng("root_rtl_operands");
  for (int i = 0; i < 24; ++i) {
    operands.push_back(static_cast<std::uint32_t>(rng.below(65536)));
  }
  for (std::uint32_t value : operands) {
    sim.set_input("start", true);
    rtl::drive_word(sim, op, value);
    sim.step();  // load
    sim.set_input("start", false);
    for (int c = 0; c < app::kRootLatencyCycles; ++c) sim.step();
    EXPECT_TRUE(sim.output("done")) << value;
    rtl::Word result;
    for (int i = 0; i < 12; ++i) {
      result.bits.push_back(n.output("result[" + std::to_string(i) + "]"));
    }
    EXPECT_EQ(rtl::read_word(sim, result),
              app::root_reference(static_cast<std::uint16_t>(value)))
        << "operand " << value;
  }
}

TEST(DistanceRtl, AccumulatesAbsoluteDifferences) {
  const auto n = app::build_distance_rtl(8, 16);
  rtl::Simulator sim{n};
  rtl::Word a;
  rtl::Word b;
  rtl::Word acc;
  for (int i = 0; i < 8; ++i) {
    a.bits.push_back(n.input("a[" + std::to_string(i) + "]"));
    b.bits.push_back(n.input("b[" + std::to_string(i) + "]"));
  }
  for (int i = 0; i < 16; ++i) {
    acc.bits.push_back(n.output("acc[" + std::to_string(i) + "]"));
  }
  sim.set_input("clear", true);
  sim.set_input("valid", false);
  sim.step();
  sim.set_input("clear", false);
  sim.set_input("valid", true);
  std::uint64_t expected = 0;
  const std::pair<std::uint64_t, std::uint64_t> samples[] = {
      {10, 3}, {3, 10}, {255, 0}, {128, 128}, {77, 200}};
  for (const auto& [va, vb] : samples) {
    rtl::drive_word(sim, a, va);
    rtl::drive_word(sim, b, vb);
    sim.step();
    expected += va > vb ? va - vb : vb - va;
    EXPECT_EQ(rtl::read_word(sim, acc), expected);
  }
  EXPECT_FALSE(sim.output("overflow"));
  sim.set_input("clear", true);
  sim.step();
  EXPECT_EQ(rtl::read_word(sim, acc), 0u);
}

TEST(WrapperFsm, WalksThroughProtocol) {
  const auto n = app::build_wrapper_fsm();
  rtl::Simulator sim{n};
  EXPECT_FALSE(sim.output("busy"));
  sim.set_input("start", true);
  sim.step();
  sim.set_input("start", false);
  EXPECT_TRUE(sim.output("busy"));
  EXPECT_TRUE(sim.output("bus_req"));  // LOAD
  sim.set_input("xfer_done", true);
  sim.step();
  sim.set_input("xfer_done", false);
  EXPECT_TRUE(sim.output("dev_start"));  // EXEC
  EXPECT_FALSE(sim.output("bus_req"));
  sim.set_input("dev_done", true);
  sim.step();
  sim.set_input("dev_done", false);
  EXPECT_TRUE(sim.output("bus_req"));  // STORE
  sim.set_input("xfer_done", true);
  sim.eval();
  EXPECT_TRUE(sim.output("ack"));
  sim.step();
  sim.set_input("xfer_done", false);
  sim.eval();
  EXPECT_FALSE(sim.output("busy"));  // back to IDLE
}

TEST(WrapperFsm, SafetyPropertiesProved) {
  const auto n = app::build_wrapper_fsm();
  const mc::ModelChecker checker{n};
  // The device never starts while the bus is being used by the wrapper.
  const auto exclusive = mc::Property::invariant(
      "no_dev_start_during_bus_req",
      !(mc::Expr::signal("dev_start") && mc::Expr::signal("bus_req")));
  EXPECT_EQ(checker.check(exclusive).status, mc::CheckStatus::proved);
  // An ack only happens while busy.
  const auto ack_busy = mc::Property::invariant(
      "ack_implies_busy", mc::Expr::signal("ack").implies(mc::Expr::signal("busy")));
  EXPECT_EQ(checker.check(ack_busy).status, mc::CheckStatus::proved);
}

TEST(RootRtl, DoneStableInvariant) {
  const auto n = app::build_root_rtl();
  const mc::ModelChecker checker{n};
  // busy and done are never asserted together... done rises exactly when
  // busy drops; they can overlap for zero cycles by construction:
  const auto prop = mc::Property::invariant(
      "busy_xor_done_weak",
      !(mc::Expr::signal("busy") && mc::Expr::signal("done")));
  const auto result = checker.check(prop, {10, 3});
  // This invariant is in fact true (done set only when finishing clears
  // busy); accept proof or bounded-clean, reject counterexamples.
  EXPECT_NE(result.status, mc::CheckStatus::falsified);
}

// ------------------------------------------------------------------ PCC

TEST(Pcc, ExtendedPropertySuiteIsProvable) {
  const auto n = app::build_wrapper_fsm();
  const mc::ModelChecker checker{n};
  for (const auto& prop : app::wrapper_properties_extended()) {
    const auto result = checker.check(prop, {12, 4});
    EXPECT_NE(result.status, mc::CheckStatus::falsified) << prop.name;
  }
}

TEST(Pcc, ExtendedPropertySetCoversMostWrapperFaults) {
  const auto n = app::build_wrapper_fsm();
  pcc::PccOptions options;
  options.bmc_bound = 8;
  const auto report =
      pcc::check_property_coverage(n, app::wrapper_properties_extended(), options);
  EXPECT_GT(report.total_faults, 10u);
  EXPECT_GT(report.coverage_percent(), 60.0);
  EXPECT_EQ(report.detected, report.detected_by_simulation + report.detected_by_bmc);
}

TEST(Pcc, RicherPropertySetScoresHigher) {
  // The PCC workflow of §3.4: prove, measure coverage, find it lacking,
  // add properties, measure again — coverage must increase.
  const auto n = app::build_wrapper_fsm();
  pcc::PccOptions options;
  options.bmc_bound = 6;
  const auto weak_report =
      pcc::check_property_coverage(n, app::wrapper_properties_initial(), options);
  const auto strong_report =
      pcc::check_property_coverage(n, app::wrapper_properties_extended(), options);
  EXPECT_GE(strong_report.coverage_percent(), weak_report.coverage_percent());
  EXPECT_GT(strong_report.detected, weak_report.detected);
  EXPECT_FALSE(weak_report.undetected.empty());
}

TEST(Pcc, FaultSamplingCapRespected) {
  const auto n = app::build_distance_rtl(6, 10);
  std::vector<mc::Property> properties;
  properties.push_back(mc::Property::invariant(
      "overflow_implies_acc_msb_or_any",
      mc::Expr::signal("overflow").implies(mc::Expr::constant(true))));
  pcc::PccOptions options;
  options.max_faults = 20;
  options.bmc_bound = 4;
  const auto report = pcc::check_property_coverage(n, properties, options);
  EXPECT_EQ(report.total_faults, 20u);
}

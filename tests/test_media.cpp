// Tests for the media library: synthetic faces, pipeline kernels, database
// and the C reference model (src/media).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "media/database.hpp"
#include "media/face_gen.hpp"
#include "media/image.hpp"
#include "media/kernels.hpp"
#include "media/pipeline.hpp"
#include "verif/coverage.hpp"
#include "verif/fault.hpp"
#include "support/test_util.hpp"
#include "verif/rng.hpp"

namespace media = symbad::media;
namespace verif = symbad::verif;
using media::Image;

// ----------------------------------------------------------------- Image

TEST(Image, BasicAccessAndBounds) {
  Image img{4, 3, 7};
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.at(0, 0), 7);
  img.at(2, 1) = 99;
  EXPECT_EQ(img.at(2, 1), 99);
  EXPECT_THROW((void)img.at(4, 0), std::out_of_range);
  EXPECT_THROW((void)img.at(0, 3), std::out_of_range);
  EXPECT_THROW((Image{0, 5}), std::invalid_argument);
}

TEST(Image, ClampedBorderPolicy) {
  Image img{2, 2};
  img.at(0, 0) = 1;
  img.at(1, 0) = 2;
  img.at(0, 1) = 3;
  img.at(1, 1) = 4;
  EXPECT_EQ(img.clamped(-5, -5), 1);
  EXPECT_EQ(img.clamped(7, 0), 2);
  EXPECT_EQ(img.clamped(0, 9), 3);
  EXPECT_EQ(img.clamped(9, 9), 4);
}

TEST(Image, ChecksumSensitivity) {
  Image a{8, 8, 0};
  Image b{8, 8, 0};
  EXPECT_EQ(a.checksum(), b.checksum());
  b.at(3, 3) = 1;
  EXPECT_NE(a.checksum(), b.checksum());
}

// -------------------------------------------------------------- face gen

TEST(FaceGen, DeterministicPerIdentity) {
  const auto p1 = media::FaceParams::for_identity(3);
  const auto p2 = media::FaceParams::for_identity(3);
  EXPECT_EQ(p1.head_a, p2.head_a);
  EXPECT_EQ(p1.mouth_w, p2.mouth_w);
  const Image f1 = media::render_face(p1, media::Pose::frontal());
  const Image f2 = media::render_face(p2, media::Pose::frontal());
  EXPECT_EQ(f1.checksum(), f2.checksum());
}

TEST(FaceGen, IdentitiesDiffer) {
  const Image a =
      media::render_face(media::FaceParams::for_identity(0), media::Pose::frontal());
  const Image b =
      media::render_face(media::FaceParams::for_identity(1), media::Pose::frontal());
  EXPECT_NE(a.checksum(), b.checksum());
}

TEST(FaceGen, PoseChangesImage) {
  const auto params = media::FaceParams::for_identity(0);
  media::Pose shifted;
  shifted.dx = 4;
  media::Pose rotated;
  rotated.rot_deg = 10;
  const Image frontal = media::render_face(params, media::Pose::frontal());
  EXPECT_NE(frontal.checksum(), media::render_face(params, shifted).checksum());
  EXPECT_NE(frontal.checksum(), media::render_face(params, rotated).checksum());
}

TEST(FaceGen, CameraAddsMosaicAndNoise) {
  const auto params = media::FaceParams::for_identity(0);
  const Image scene = media::render_face(params, media::Pose::frontal());
  const Image raw = media::camera_capture(params, media::Pose::frontal());
  EXPECT_NE(scene.checksum(), raw.checksum());
  // Determinism of the noise via the pose seed.
  EXPECT_EQ(raw.checksum(), media::camera_capture(params, media::Pose::frontal()).checksum());
  media::Pose other = media::Pose::frontal();
  other.noise_seed = 99;
  EXPECT_NE(raw.checksum(), media::camera_capture(params, other).checksum());
}

// --------------------------------------------------------------- kernels

TEST(Kernels, ErosionIsLowerEnvelope) {
  auto rng = symbad::test::rng(11);
  Image img{16, 16};
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) img.px(x, y) = static_cast<std::uint16_t>(rng.below(256));
  }
  const Image out = media::erode3x3(img);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) EXPECT_LE(out.px(x, y), img.px(x, y));
  }
}

TEST(Kernels, ErosionOfConstantIsConstant) {
  const Image img{8, 8, 42};
  const Image out = media::erode3x3(img);
  for (const auto p : out.data()) EXPECT_EQ(p, 42);
}

TEST(Kernels, IsqrtExact) {
  for (std::uint32_t v = 0; v < 70000; v += 7) {
    const std::uint32_t r = media::isqrt32(v);
    EXPECT_LE(static_cast<std::uint64_t>(r) * r, v);
    EXPECT_GT(static_cast<std::uint64_t>(r + 1) * (r + 1), v);
  }
  EXPECT_EQ(media::isqrt32(0), 0);
  EXPECT_EQ(media::isqrt32(1), 1);
  EXPECT_EQ(media::isqrt32(65536), 256);
}

TEST(Kernels, RootTransformMonotone) {
  Image img{4, 1};
  img.px(0, 0) = 0;
  img.px(1, 0) = 10;
  img.px(2, 0) = 100;
  img.px(3, 0) = 255;
  const Image out = media::root_transform(img);
  EXPECT_EQ(out.px(0, 0), 0);
  EXPECT_LT(out.px(0, 0), out.px(1, 0));
  EXPECT_LT(out.px(1, 0), out.px(2, 0));
  EXPECT_LT(out.px(2, 0), out.px(3, 0));
  // out = sqrt(v*256) = 16*sqrt(v): 255 -> ~255.5
  EXPECT_EQ(out.px(3, 0), 255);
}

TEST(Kernels, SobelFlatImageHasNoEdges) {
  const Image img{16, 16, 128};
  const auto r = media::sobel_edge(img, 40);
  for (const auto p : r.binary.data()) EXPECT_EQ(p, 0);
  for (const auto p : r.magnitude.data()) EXPECT_EQ(p, 0);
}

TEST(Kernels, SobelDetectsStep) {
  Image img{16, 16, 0};
  for (int y = 0; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) img.px(x, y) = 200;
  }
  const auto r = media::sobel_edge(img, 100);
  int edges = 0;
  for (const auto p : r.binary.data()) edges += p;
  EXPECT_GT(edges, 10);
}

TEST(Kernels, EllipseFitFindsDrawnRing) {
  Image binary{64, 64, 0};
  const int cx = 30;
  const int cy = 34;
  for (int deg = 0; deg < 360; ++deg) {
    const double rad = deg * 3.14159265 / 180.0;
    const int x = cx + static_cast<int>(18 * std::cos(rad));
    const int y = cy + static_cast<int>(12 * std::sin(rad));
    binary.px(x, y) = 1;
  }
  const auto fit = media::fit_ellipse(binary);
  ASSERT_TRUE(fit.found);
  EXPECT_NEAR(fit.cx, cx, 2);
  EXPECT_NEAR(fit.cy, cy, 2);
  EXPECT_GT(fit.axis_a, fit.axis_b);  // wider than tall
}

TEST(Kernels, EllipseFitRejectsSparseImage) {
  Image binary{32, 32, 0};
  binary.px(5, 5) = 1;
  const auto fit = media::fit_ellipse(binary);
  EXPECT_FALSE(fit.found);
}

TEST(Kernels, CropBorderFallbackWithoutFit) {
  Image src{64, 64};
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) src.px(x, y) = static_cast<std::uint16_t>(x + y);
  }
  media::EllipseFit none;
  const Image win = media::crop_border(src, none, 16);
  EXPECT_EQ(win.width(), 16);
  EXPECT_EQ(win.height(), 16);
  EXPECT_EQ(win.px(0, 0), src.px(0, 0));
}

TEST(Kernels, CropBorderCentersOnFit) {
  Image src{64, 64, 0};
  src.px(40, 20) = 777;
  media::EllipseFit fit;
  fit.found = true;
  fit.cx = 40;
  fit.cy = 20;
  fit.axis_a = 8;
  fit.axis_b = 8;
  const Image win = media::crop_border(src, fit, 16);
  // The bright pixel sits near the window centre.
  bool found = false;
  for (int y = 6; y <= 10 && !found; ++y) {
    for (int x = 6; x <= 10 && !found; ++x) found = win.px(x, y) == 777;
  }
  EXPECT_TRUE(found);
}

TEST(Kernels, LineProfilesConserveMass) {
  auto rng = symbad::test::rng(5);
  Image win{32, 32};
  std::uint64_t total = 0;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      win.px(x, y) = static_cast<std::uint16_t>(rng.below(256));
      total += win.px(x, y);
    }
  }
  const auto p = media::create_lines(win);
  const auto sum = [](const std::vector<std::uint32_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  };
  EXPECT_EQ(sum(p.rows), total);
  EXPECT_EQ(sum(p.cols), total);
  EXPECT_EQ(sum(p.diag_main), total);
  EXPECT_EQ(sum(p.diag_anti), total);
  EXPECT_EQ(p.total_elements(), 32u + 32u + 63u + 63u);
}

TEST(Kernels, FeaturesAreMeanFree) {
  auto rng = symbad::test::rng(9);
  Image win{32, 32};
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) win.px(x, y) = static_cast<std::uint16_t>(rng.below(256));
  }
  const auto features = media::calc_line_features(media::create_lines(win));
  ASSERT_FALSE(features.v.empty());
  // Each segment is mean-removed: overall mean close to zero.
  std::int64_t sum = 0;
  for (const auto v : features.v) sum += v;
  EXPECT_LT(std::abs(sum / static_cast<std::int64_t>(features.v.size())), 4);
}

TEST(Kernels, DistanceMetricProperties) {
  auto rng = symbad::test::rng(13);
  media::FeatureVec a;
  media::FeatureVec b;
  for (int i = 0; i < 64; ++i) {
    a.v.push_back(static_cast<std::int16_t>(rng.range(-100, 100)));
    b.v.push_back(static_cast<std::int16_t>(rng.range(-100, 100)));
  }
  EXPECT_EQ(media::calc_distance(a, a), 0u);
  EXPECT_EQ(media::calc_distance(a, b), media::calc_distance(b, a));
  media::FeatureVec short_vec;
  short_vec.v.resize(10);
  EXPECT_THROW((void)media::calc_distance(a, short_vec), std::invalid_argument);
}

TEST(Kernels, WinnerPicksMinimum) {
  const std::vector<std::uint32_t> d{50, 20, 90, 20, 100};
  const auto w = media::pick_winner(d);
  EXPECT_EQ(w.index, 1);
  EXPECT_EQ(w.best, 20u);
  EXPECT_EQ(w.second, 20u);
  EXPECT_FALSE(w.confident);  // tie: not separated

  const std::vector<std::uint32_t> d2{100, 20, 90};
  const auto w2 = media::pick_winner(d2);
  EXPECT_EQ(w2.index, 1);
  EXPECT_TRUE(w2.confident);

  const auto w3 = media::pick_winner({});
  EXPECT_EQ(w3.index, -1);
}

// ------------------------------------------------------------- pipeline

namespace {

media::Pose query_pose(int identity, int variant) {
  media::Pose pose;
  pose.dx = (variant % 3) - 1;
  pose.dy = ((variant + 1) % 3) - 1;
  pose.rot_deg = (variant % 2 == 0) ? 3 : -3;
  pose.light_offset = 5;
  pose.noise_seed = 0xBEEF + static_cast<std::uint64_t>(identity * 7 + variant);
  pose.noise_amp = 2;
  return pose;
}

}  // namespace

TEST(Pipeline, RecognisesUnseenPoses) {
  const auto db = media::FaceDatabase::enroll(10, 5);
  int correct = 0;
  int total = 0;
  for (int id = 0; id < 10; ++id) {
    const auto params = media::FaceParams::for_identity(id);
    for (int variant = 0; variant < 3; ++variant) {
      const Image frame = media::camera_capture(params, query_pose(id, variant));
      const auto result = media::recognize(frame, db);
      ++total;
      if (result.identity == id) ++correct;
    }
  }
  // The paper's system distinguishes 20 identities; our synthetic pipeline
  // must be comfortably above chance (10%) — demand 80%.
  EXPECT_GE(correct * 100, total * 80) << correct << "/" << total;
}

TEST(Pipeline, DeterministicResults) {
  const auto db = media::FaceDatabase::enroll(5, 3);
  const auto params = media::FaceParams::for_identity(2);
  const Image frame = media::camera_capture(params, query_pose(2, 0));
  const auto r1 = media::recognize(frame, db);
  const auto r2 = media::recognize(frame, db);
  EXPECT_EQ(r1.identity, r2.identity);
  EXPECT_EQ(r1.distances, r2.distances);
  EXPECT_EQ(r1.traces.features, r2.traces.features);
}

TEST(Pipeline, ProfileRanksRootAndDistanceHeaviest) {
  // The paper's configuration: 20 identities under multiple poses. With the
  // full database, profiling must rank ROOT and DISTANCE as the two
  // heaviest tasks — the designer knowledge that sends exactly those two
  // modules into the FPGA at level 3.
  const auto db = media::FaceDatabase::enroll(20, 5);
  const auto params = media::FaceParams::for_identity(0);
  const Image frame = media::camera_capture(params, media::Pose::frontal());
  media::PipelineProfile profile;
  (void)media::recognize(frame, db, {}, &profile);
  const auto ranking = profile.ranking();
  ASSERT_GE(ranking.size(), 2u);
  EXPECT_EQ(ranking[0], media::stage::root);
  EXPECT_EQ(ranking[1], media::stage::distance);
}

TEST(Pipeline, CoverageInstrumentationRecordsHits) {
  verif::CoverageDb cov;
  {
    verif::CoverageDb::Scope scope{cov};
    const auto db = media::FaceDatabase::enroll(3, 2);
    const auto params = media::FaceParams::for_identity(0);
    const Image frame = media::camera_capture(params, media::Pose::frontal());
    (void)media::recognize(frame, db);
  }
  const auto report = cov.report();
  EXPECT_GT(report.statement_total, 0);
  EXPECT_GT(report.statement_covered, 0);
  EXPECT_GT(report.branch_total, 0);
  // A single nominal frame cannot cover everything (e.g. the no-face path).
  EXPECT_LT(report.branch_covered, report.branch_total);
  EXPECT_GT(report.overall_percent(), 30.0);
}

TEST(Pipeline, SeededMemoryBugLeaksAcrossFrames) {
  const auto db = media::FaceDatabase::enroll(5, 3);
  media::PipelineConfig good;
  media::PipelineConfig buggy;
  buggy.seeded_memory_bug = true;

  const auto params0 = media::FaceParams::for_identity(0);
  const auto params1 = media::FaceParams::for_identity(1);
  const Image frame_a = media::camera_capture(params0, media::Pose::frontal());
  const Image frame_b = media::camera_capture(params1, media::Pose::frontal());

  media::FrontEndState state;
  // First frame: no stale data yet -> identical to good pipeline.
  const auto good_a = media::recognize(frame_a, db, good);
  const auto bug_a = media::recognize(frame_a, db, buggy, nullptr, nullptr, &state);
  EXPECT_EQ(good_a.traces.window, bug_a.traces.window);
  // Second frame: window leaks one row from the previous frame.
  const auto good_b = media::recognize(frame_b, db, good);
  const auto bug_b = media::recognize(frame_b, db, buggy, nullptr, nullptr, &state);
  EXPECT_NE(good_b.traces.window, bug_b.traces.window);
}

TEST(Pipeline, BitFaultChangesObservableOutput) {
  const auto db = media::FaceDatabase::enroll(5, 3);
  const auto params = media::FaceParams::for_identity(0);
  const Image frame = media::camera_capture(params, media::Pose::frontal());
  const auto golden = media::recognize(frame, db);

  verif::BitFault fault;
  fault.stage = media::stage::root;
  fault.port = verif::PortDirection::output;
  fault.word_index = 1000;
  fault.bit = 7;
  fault.stuck_to = true;
  const auto faulty = media::recognize(frame, db, {}, nullptr, &fault);
  EXPECT_NE(golden.traces.root, faulty.traces.root);
}

// -------------------------------------------------------------- database

TEST(Database, EnrollmentShapeAndDeterminism) {
  const auto db = media::FaceDatabase::enroll(4, 3);
  EXPECT_EQ(db.size(), 12u);
  EXPECT_EQ(db.identities(), 4);
  EXPECT_EQ(db.poses_per_identity(), 3);
  EXPECT_EQ(db.identity_of(0), 0);
  EXPECT_EQ(db.identity_of(11), 3);
  EXPECT_GT(db.storage_bytes(), 0u);

  const auto db2 = media::FaceDatabase::enroll(4, 3);
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(db.entry(i).features, db2.entry(i).features);
  }
}

TEST(Database, RejectsEmptyEnrollment) {
  EXPECT_THROW((void)media::FaceDatabase::enroll(0, 3), std::invalid_argument);
  EXPECT_THROW((void)media::FaceDatabase::enroll(3, 0), std::invalid_argument);
}

/// Parameterised sweep: enrollment poses must be distinguishable templates —
/// nearest template of a re-rendered enrollment frame is itself.
class DatabaseSelfMatch : public ::testing::TestWithParam<int> {};

TEST_P(DatabaseSelfMatch, EnrollmentFrameMatchesOwnIdentity) {
  static const auto db = media::FaceDatabase::enroll(8, 3);
  const int id = GetParam();
  const auto params = media::FaceParams::for_identity(id);
  const Image frame = media::camera_capture(params, media::enrollment_pose(id, 0));
  const auto result = media::recognize(frame, db);
  EXPECT_EQ(result.identity, id);
  EXPECT_EQ(result.winner.best, 0u);  // exact template hit
}

INSTANTIATE_TEST_SUITE_P(Identities, DatabaseSelfMatch, ::testing::Range(0, 8));

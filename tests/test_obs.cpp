// Tests for the observability layer (src/obs): registry semantics, the
// worker-count determinism contract, allocation-free hot path, Chrome-trace
// export, env knobs, and the per-subsystem registry bridges.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exec/campaign.hpp"
#include "gen/gen.hpp"
#include "mc/mc.hpp"
#include "obs/obs.hpp"
#include "pcc/pcc.hpp"
#include "rtl/wordops.hpp"
#include "sat/solver.hpp"
#include "support/alloc_counter.hpp"
#include "support/test_util.hpp"

namespace exec = symbad::exec;
namespace gen = symbad::gen;
namespace mc = symbad::mc;
namespace obs = symbad::obs;
namespace pcc = symbad::pcc;
namespace rtl = symbad::rtl;
namespace sat = symbad::sat;

using symbad::test_support::arm_allocation_counter;
using symbad::test_support::disarm_allocation_counter;

namespace {

/// Restores the registry level (and clears any trace path) on scope exit, so
/// a test that flips SYMBAD_OBS semantics cannot leak into its neighbours.
class LevelGuard {
 public:
  LevelGuard()
      : level_{obs::Registry::instance().level()},
        trace_path_{obs::Registry::instance().trace_path()} {}
  ~LevelGuard() {
    obs::Registry::instance().set_level(level_);
    obs::Registry::instance().set_trace_path(trace_path_);
  }

 private:
  int level_;
  std::string trace_path_;
};

/// Sets (or unsets, for nullopt) an environment variable and restores the
/// previous state on scope exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, std::optional<std::string> value) : name_{name} {
    if (const char* old = std::getenv(name)) previous_ = old;
    apply(value);
  }
  ~EnvGuard() { apply(previous_); }

 private:
  void apply(const std::optional<std::string>& value) {
    if (value.has_value()) {
      ::setenv(name_, value->c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_);
    }
  }
  const char* name_;
  std::optional<std::string> previous_;
};

std::vector<exec::Scenario> generated_scenarios() {
  const auto platform = gen::generate_platform(0x0B5EED, gen::SizeTier::small);
  return gen::cross_level_scenarios_for(platform, /*frames=*/3);
}

exec::CampaignReport run_campaign(const std::vector<exec::Scenario>& scenarios,
                                  int workers) {
  exec::CampaignRunner::Options options;
  options.workers = workers;  // explicit: bypasses SYMBAD_CAMPAIGN_WORKERS
  options.rethrow_errors = true;
  const exec::CampaignRunner runner{gen::synthetic_runtime_factory(), options};
  return runner.run(scenarios);
}

/// Saturating 3-bit counter with enable (same shape test_mc_pcc uses) —
/// small enough for bridge-equality checks to stay instant.
rtl::Netlist saturating_counter() {
  rtl::Netlist n{"obs_satcnt"};
  const auto en = n.add_input("en");
  const auto regs = rtl::make_registers(n, "c", 3, 0);
  const auto one = rtl::make_constant(n, 1, 3);
  const auto [inc, carry] = rtl::add(n, regs, one);
  (void)carry;
  const auto at_max = rtl::equal_constant(n, regs, 7);
  const auto hold = n.add_or(at_max, n.add_not(en));
  const auto next = rtl::mux_word(n, hold, regs, inc);
  rtl::connect_registers(n, regs, next);
  rtl::set_output_word(n, "c", regs);
  n.set_output("at_max", at_max);
  n.set_output("en_out", en);
  return n;
}

// ------------------------------------------------- minimal JSON validator
// Just enough of RFC 8259 to certify "this file loads as JSON": objects,
// arrays, strings with escapes, numbers, true/false/null.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_{text} {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          if (pos_ + 4 >= s_.size()) return false;
          pos_ += 4;
        } else if (std::string_view{"\"\\/bfnrt"}.find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '.' || s_[pos_] == 'e' ||
                                s_[pos_] == 'E' || s_[pos_] == '+' ||
                                s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

// ------------------------------------------------------------- registry

TEST(ObsRegistry, CounterRegistrationIsIdempotentAndOrdered) {
  const LevelGuard guard;
  auto& registry = obs::Registry::instance();
  registry.set_level(1);  // counting must be on even under SYMBAD_OBS=0
  const auto before = registry.counters_registered();
  const auto c1 = registry.counter("test.obs.alpha");
  const auto c2 = registry.counter("test.obs.alpha");
  EXPECT_EQ(registry.counters_registered(), before + 1);

  const auto base = registry.snapshot().counter("test.obs.alpha");
  c1.add(3);
  c2.inc();
  EXPECT_EQ(registry.snapshot().counter("test.obs.alpha"), base + 4);
}

TEST(ObsRegistry, DefaultConstructedHandlesAreNoOps) {
  const obs::Counter c;
  const obs::Gauge g;
  c.add(17);  // must not crash or register anything
  g.set(1.0);
  g.add(1.0);
}

TEST(ObsRegistry, GaugeCapacityCoversMaxCampaignWorkerFleet) {
  auto& registry = obs::Registry::instance();
  // resolve_workers clamps to 64 and every campaign worker registers two
  // host gauges from its own thread, where a capacity throw would escape
  // the thread entry point and terminate the process — so the full fleet
  // (plus the fixed host.exec.*/host.sim.* gauges, registered by any prior
  // campaign in this process) must fit under kMaxGauges with room to spare.
  for (int w = 0; w < 64; ++w) {
    const std::string prefix = "host.exec.worker" + std::to_string(w);
    EXPECT_NO_THROW((void)registry.gauge(prefix + ".wall_seconds"));
    EXPECT_NO_THROW((void)registry.gauge(prefix + ".queue_wait_seconds"));
  }
  EXPECT_LE(registry.gauges_registered(), obs::kMaxGauges);
}

TEST(ObsRegistry, GaugeSetAndAdd) {
  const LevelGuard guard;
  auto& registry = obs::Registry::instance();
  registry.set_level(1);  // counting must be on even under SYMBAD_OBS=0
  const auto g = registry.gauge("test.obs.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauge("test.obs.gauge"), 2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauge("test.obs.gauge"), 3.0);
}

TEST(ObsRegistry, SnapshotIsNameSortedAndFiltersHostNamespace) {
  auto& registry = obs::Registry::instance();
  (void)registry.counter("test.obs.zz");
  (void)registry.counter("test.obs.aa");
  (void)registry.gauge("host.test.obs.wall");

  const auto snap = registry.snapshot();
  ASSERT_FALSE(snap.entries.empty());
  for (std::size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
  }
  EXPECT_TRUE(snap.has("host.test.obs.wall"));

  const auto with_host = snap.to_json(/*include_host=*/true);
  const auto without_host = snap.to_json(/*include_host=*/false);
  EXPECT_NE(with_host.find("host.test.obs.wall"), std::string::npos);
  EXPECT_EQ(without_host.find("host."), std::string::npos);
  EXPECT_NE(without_host.find("test.obs.aa"), std::string::npos);
  EXPECT_TRUE(JsonChecker{with_host}.valid());
  EXPECT_TRUE(JsonChecker{without_host}.valid());

  const auto text = snap.to_text(/*include_host=*/false);
  EXPECT_NE(text.find("test.obs.aa "), std::string::npos);
  EXPECT_EQ(text.find("host."), std::string::npos);
}

TEST(ObsRegistry, LevelZeroDisablesCounting) {
  const LevelGuard guard;
  auto& registry = obs::Registry::instance();
  const auto c = registry.counter("test.obs.level0");
  registry.set_level(1);
  c.inc();
  const auto counted = registry.snapshot().counter("test.obs.level0");
  registry.set_level(0);
  c.add(100);
  EXPECT_EQ(registry.snapshot().counter("test.obs.level0"), counted);
  EXPECT_THROW(registry.set_level(3), std::invalid_argument);
  EXPECT_THROW(registry.set_level(-1), std::invalid_argument);
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  const LevelGuard guard;
  auto& registry = obs::Registry::instance();
  registry.set_level(1);
  const auto c = registry.counter("test.obs.reset");
  const auto g = registry.gauge("test.obs.reset_gauge");
  c.add(5);
  g.set(9.0);
  const auto names_before = registry.counters_registered();

  registry.reset();
  EXPECT_EQ(registry.counters_registered(), names_before);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("test.obs.reset"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("test.obs.reset_gauge"), 0.0);
  EXPECT_EQ(registry.span_events_recorded(), 0u);

  c.inc();  // handles survive the reset
  EXPECT_EQ(registry.snapshot().counter("test.obs.reset"), 1u);
}

TEST(ObsWorkerId, ScopesNestAndRestore) {
  EXPECT_EQ(obs::current_worker_id(), -1);
  {
    const obs::ScopedWorkerId outer{3};
    EXPECT_EQ(obs::current_worker_id(), 3);
    {
      const obs::ScopedWorkerId inner{7};
      EXPECT_EQ(obs::current_worker_id(), 7);
    }
    EXPECT_EQ(obs::current_worker_id(), 3);
  }
  EXPECT_EQ(obs::current_worker_id(), -1);
}

// ------------------------------------------------------------ env knobs

TEST(ObsEnv, StrictLevelParse) {
  const LevelGuard guard;
  {
    const EnvGuard env{"SYMBAD_OBS", std::nullopt};
    EXPECT_EQ(obs::resolve_level_from_env(), 1);  // unset -> default 1
  }
  for (const char* good : {"0", "1", "2"}) {
    const EnvGuard env{"SYMBAD_OBS", std::string{good}};
    EXPECT_EQ(obs::resolve_level_from_env(), good[0] - '0');
  }
  for (const char* bad : {"garbage", "3", "-1", "1.5", ""}) {
    const EnvGuard env{"SYMBAD_OBS", std::string{bad}};
    EXPECT_THROW(obs::resolve_level_from_env(), std::invalid_argument)
        << "SYMBAD_OBS=" << bad;
  }
}

// ---------------------------------------------------------- determinism

TEST(ObsDeterminism, SnapshotByteIdenticalAcrossWorkerCounts) {
  const LevelGuard guard;
  auto& registry = obs::Registry::instance();
  registry.set_level(2);  // spans on: the harder case for determinism

  const auto scenarios = generated_scenarios();
  ASSERT_EQ(scenarios.size(), 3u);

  std::vector<std::string> snapshots;
  for (const int workers : {1, 4}) {
    registry.reset();
    const auto report = run_campaign(scenarios, workers);
    ASSERT_EQ(report.failures(), 0u) << report.to_string();

    // CampaignReport::metrics is the post-join snapshot: it must already
    // carry this campaign's deterministic counters.
    EXPECT_EQ(report.metrics.counter("exec.campaigns"), 1u);
    EXPECT_EQ(report.metrics.counter("exec.scenarios"), scenarios.size());
    EXPECT_EQ(report.metrics.counter("exec.scenario_failures"), 0u);
    EXPECT_EQ(report.metrics.counter("exec.agreement_checks"),
              report.agreements.size());
    EXPECT_GT(report.metrics.counter("sim.kernel.runs"), 0u);

    snapshots.push_back(report.metrics.to_json(/*include_host=*/false));
  }
  EXPECT_EQ(snapshots[0], snapshots[1])
      << "deterministic counter namespaces must not depend on worker count";
}

TEST(ObsDeterminism, HostNamespaceCarriesWallClockMetrics) {
  const LevelGuard guard;
  obs::Registry::instance().set_level(1);
  obs::Registry::instance().reset();
  const auto scenarios = generated_scenarios();
  const auto report = run_campaign(scenarios, 2);
  EXPECT_GT(report.metrics.gauge("host.exec.wall_seconds"), 0.0);
  EXPECT_GT(report.metrics.gauge("host.sim.wall_seconds"), 0.0);
  // Per-worker attribution exists for both workers and sums to the total.
  const auto w0 = report.metrics.counter("host.exec.worker0.scenarios");
  const auto w1 = report.metrics.counter("host.exec.worker1.scenarios");
  EXPECT_EQ(w0 + w1, scenarios.size());
}

// ------------------------------------------------------------ hot path

TEST(ObsAlloc, CounterHotPathIsAllocationFree) {
  const LevelGuard guard;
  auto& registry = obs::Registry::instance();
  registry.set_level(1);
  const auto c = registry.counter("test.obs.hotpath");
  c.inc();  // warm-up: thread-shard registration happens off the armed region

  const auto base = registry.snapshot().counter("test.obs.hotpath");
  arm_allocation_counter();
  for (int i = 0; i < 10'000; ++i) c.add(1);
  const auto allocations = disarm_allocation_counter();
  EXPECT_EQ(allocations, 0u);
  EXPECT_EQ(registry.snapshot().counter("test.obs.hotpath"), base + 10'000);
}

// ---------------------------------------------------------- chrome trace

namespace symbad::test {

class ObsTraceTest : public TmpDirTest {};

TEST_F(ObsTraceTest, CampaignWritesValidChromeTraceWithSpanPerWorker) {
  const LevelGuard guard;
  auto& registry = obs::Registry::instance();
  registry.set_level(2);
  registry.reset();
  const auto trace_file = (tmp_dir() / "trace.json").string();
  registry.set_trace_path(trace_file);

  const auto scenarios = generated_scenarios();
  const auto report = run_campaign(scenarios, 2);
  ASSERT_EQ(report.failures(), 0u) << report.to_string();
  // run() auto-exports after the pool joins (SYMBAD_OBS_TRACE semantics).

  std::ifstream in{trace_file};
  ASSERT_TRUE(in.good()) << "campaign did not write " << trace_file;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string trace = buffer.str();

  EXPECT_TRUE(JsonChecker{trace}.valid());
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  // Both campaign workers opened an `exec.worker` span, attributed to their
  // worker ids (Chrome-trace tid).
  EXPECT_NE(trace.find("\"name\":\"exec.worker\""), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":1"), std::string::npos);
  // The campaign span itself nests the whole run on the calling thread.
  EXPECT_NE(trace.find("\"name\":\"exec.campaign\""), std::string::npos);
}

TEST_F(ObsTraceTest, UnwritableTracePathIsReportedNotThrown) {
  const LevelGuard guard;
  auto& registry = obs::Registry::instance();
  registry.set_level(2);
  registry.reset();
  // The export runs after the campaign finished; a bad path must surface as
  // a report warning, not throw away the completed results.
  registry.set_trace_path((tmp_dir() / "no_such_dir" / "trace.json").string());

  const auto scenarios = generated_scenarios();
  const auto report = run_campaign(scenarios, 2);
  EXPECT_EQ(report.failures(), 0u);
  EXPECT_FALSE(report.trace_error.empty());
  EXPECT_NE(report.to_string().find("trace export failed"), std::string::npos);
}

}  // namespace symbad::test

// ------------------------------------------------------ subsystem bridges

TEST(ObsBridge, SatSolveDeltasSumIntoRegistry) {
  const LevelGuard guard;
  auto& registry = obs::Registry::instance();
  registry.set_level(1);
  registry.reset();

  // The registry accumulates per-solve deltas (add_clause may propagate
  // outside any solve; that work is deliberately not bridged), so compare
  // against the sum of last_solve_statistics over the two calls.
  sat::Solver solver;
  const auto a = sat::Lit::positive(solver.new_var());
  const auto b = sat::Lit::positive(solver.new_var());
  solver.add_clause({a, b});
  solver.add_clause({~a, b});
  std::uint64_t decisions = 0, propagations = 0, conflicts = 0;
  ASSERT_EQ(solver.solve(), sat::Result::sat);
  decisions += solver.last_solve_statistics().decisions;
  propagations += solver.last_solve_statistics().propagations;
  conflicts += solver.last_solve_statistics().conflicts;
  solver.add_clause({~b});
  ASSERT_EQ(solver.solve(), sat::Result::unsat);
  decisions += solver.last_solve_statistics().decisions;
  propagations += solver.last_solve_statistics().propagations;
  conflicts += solver.last_solve_statistics().conflicts;

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("sat.solves"), 2u);
  EXPECT_EQ(snap.counter("sat.decisions"), decisions);
  EXPECT_EQ(snap.counter("sat.propagations"), propagations);
  EXPECT_EQ(snap.counter("sat.conflicts"), conflicts);
}

TEST(ObsBridge, CheckResultMatchesRegistry) {
  const LevelGuard guard;
  auto& registry = obs::Registry::instance();
  registry.set_level(1);
  registry.reset();

  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const auto inv = mc::Property::invariant("never_max", !mc::Expr::signal("at_max"));
  const auto result = checker.check(inv);
  ASSERT_EQ(result.status, mc::CheckStatus::falsified);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("mc.checks"), 1u);
  EXPECT_EQ(snap.counter("mc.bounds_used"),
            static_cast<std::uint64_t>(result.bound_used));
  EXPECT_EQ(snap.counter("mc.frames_encoded"), result.frames_encoded);
  EXPECT_EQ(snap.counter("mc.sat_conflicts"), result.total_sat_conflicts);
  EXPECT_EQ(snap.counter("mc.cex_conflicts"), result.cex_conflicts);
  EXPECT_EQ(snap.counter("mc.opt_gates_before"), result.opt_gates_before);
  EXPECT_EQ(snap.counter("mc.opt_gates_after"), result.opt_gates_after);
}

TEST(ObsBridge, MultiCheckResultMatchesRegistry) {
  const LevelGuard guard;
  auto& registry = obs::Registry::instance();
  registry.set_level(1);
  registry.reset();

  const auto n = saturating_counter();
  const mc::ModelChecker checker{n};
  const std::vector<mc::Property> properties{
      mc::Property::invariant("p0", !mc::Expr::signal("at_max")),
      mc::Property::invariant(
          "p1", mc::Expr::signal("at_max").implies(mc::Expr::signal("c[0]"))),
  };
  const auto multi = checker.check_all(properties);
  ASSERT_EQ(multi.results.size(), 2u);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("mc.portfolio.checks"), 1u);
  EXPECT_EQ(snap.counter("mc.portfolio.properties"), 2u);
  EXPECT_EQ(snap.counter("mc.portfolio.frames_encoded"), multi.frames_encoded);
  EXPECT_EQ(snap.counter("mc.portfolio.sat_conflicts"), multi.total_sat_conflicts);
  EXPECT_EQ(snap.counter("mc.portfolio.cone_recomputes"), multi.cone_recomputes);
  EXPECT_EQ(snap.counter("mc.portfolio.opt_gates_before"), multi.opt_gates_before);
  EXPECT_EQ(snap.counter("mc.portfolio.opt_gates_after"), multi.opt_gates_after);
}

TEST(ObsBridge, PccReportMatchesRegistry) {
  const LevelGuard guard;
  auto& registry = obs::Registry::instance();
  registry.set_level(1);
  registry.reset();

  const auto n = saturating_counter();
  const std::vector<mc::Property> properties{
      mc::Property::invariant(
          "at_max_all_ones",
          mc::Expr::signal("at_max").implies(mc::Expr::signal("c[0]") &&
                                             mc::Expr::signal("c[1]") &&
                                             mc::Expr::signal("c[2]"))),
  };
  pcc::PccOptions options;
  options.bmc_bound = 4;
  options.simulation_cycles = 16;
  options.simulation_runs = 2;
  options.max_faults = 6;
  const auto report = pcc::check_property_coverage(n, properties, options);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("pcc.campaigns"), 1u);
  EXPECT_EQ(snap.counter("pcc.faults_total"), report.total_faults);
  EXPECT_EQ(snap.counter("pcc.detected"), report.detected);
  EXPECT_EQ(snap.counter("pcc.detected_by_simulation"),
            report.detected_by_simulation);
  EXPECT_EQ(snap.counter("pcc.detected_by_bmc"), report.detected_by_bmc);
  EXPECT_EQ(snap.counter("pcc.lint_pruned"), report.lint_pruned_faults);
  EXPECT_EQ(snap.counter("pcc.encoded_vars"), report.encoded_vars);
  EXPECT_EQ(snap.counter("pcc.encoded_clauses"), report.encoded_clauses);
  EXPECT_EQ(snap.counter("pcc.opt_gates_before"), report.opt_gates_before);
  EXPECT_EQ(snap.counter("pcc.opt_gates_after"), report.opt_gates_after);
  EXPECT_EQ(snap.counter("pcc.incremental_reopts"), report.incremental_reopts);
  EXPECT_EQ(snap.counter("pcc.full_rebuilds"), report.full_rebuilds);
  EXPECT_EQ(snap.counter("pcc.baseline_sweep_proofs"),
            report.baseline_sweep_proofs);
}

TEST(ObsBridge, KernelAndHostMetricsMatchReports) {
  const LevelGuard guard;
  auto& registry = obs::Registry::instance();
  registry.set_level(1);
  registry.reset();

  const auto scenarios = generated_scenarios();
  const auto report = run_campaign(scenarios, 1);
  ASSERT_EQ(report.failures(), 0u);

  std::uint64_t callbacks = 0;
  std::uint64_t deltas = 0;
  double wall = 0.0;
  for (const auto& r : report.results) {
    callbacks += r.report.kernel_callbacks;
    deltas += r.report.delta_cycles;
    wall += r.report.host.wall_seconds;
  }
  const auto snap = registry.snapshot();
  // One SystemModel::run per scenario = one kernel run each; the registry
  // totals are exactly the sums of the per-report deterministic counts.
  EXPECT_EQ(snap.counter("sim.kernel.runs"), scenarios.size());
  EXPECT_EQ(snap.counter("sim.kernel.callbacks"), callbacks);
  EXPECT_EQ(snap.counter("sim.kernel.delta_cycles"), deltas);
  // HostMetrics thin-view equivalence: the accumulated host.sim gauge is
  // the sum of the per-run struct fields (single worker: exact fp order).
  EXPECT_DOUBLE_EQ(snap.gauge("host.sim.wall_seconds"), wall);
}

// Tests for the netlist optimization engine (src/opt): rewrite rules,
// structural hashing, dead-gate elimination, SAT sweeping, the sequential
// equivalence self-check, and — the acceptance gate — bit-identical formal
// verdicts with the default-on preprocessing enabled vs disabled, on both
// hand-built fixtures and a randomized netlist fuzz harness.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <vector>

#include "app/rtl_blocks.hpp"
#include "atpg/atpg.hpp"
#include "gen/gen.hpp"
#include "mc/mc.hpp"
#include "opt/equiv.hpp"
#include "opt/optimizer.hpp"
#include "opt/sweep.hpp"
#include "rtl/netlist.hpp"
#include "rtl/wordops.hpp"
#include "support/test_util.hpp"

namespace opt = symbad::opt;
namespace mc = symbad::mc;
namespace rtl = symbad::rtl;
namespace app = symbad::app;
namespace atpg = symbad::atpg;
namespace gen = symbad::gen;
using symbad::verif::Rng;

namespace {

/// Optimizer options that keep the pipeline deterministic regardless of
/// the SYMBAD_OPT* environment (tests must not depend on ambient knobs).
opt::OptimizerOptions pinned_options() {
  opt::OptimizerOptions o;  // defaults, not from_env
  return o;
}

// ------------------------------------------------ random netlist harness

/// Seeded random netlist with deliberate redundancy — the recipe now lives
/// in gen::random_netlist (this harness is where it was grown; the shared
/// generator reproduces the exact same instances for the same Rng stream).
rtl::Netlist random_netlist(Rng& rng, int n_inputs, int n_dffs, int n_gates,
                            int n_outputs) {
  return gen::random_netlist(rng, {n_inputs, n_dffs, n_gates, n_outputs, 0.25});
}

/// Drives both netlists with the same random stimulus and requires every
/// shared output to agree on every cycle.
void expect_simulation_equivalent(const rtl::Netlist& a, const rtl::Netlist& b,
                                  Rng& rng, int runs, int cycles) {
  rtl::Simulator sim_a{a};
  rtl::Simulator sim_b{b};
  for (int run = 0; run < runs; ++run) {
    sim_a.reset();
    sim_b.reset();
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (const rtl::Net in : a.inputs()) {
        const bool value = (rng.next() & 1) != 0;
        sim_a.set_input(a.net_name(in), value);
        sim_b.set_input(a.net_name(in), value);
      }
      sim_a.eval();
      sim_b.eval();
      for (const auto& [name, net] : b.outputs()) {
        ASSERT_EQ(sim_a.value(a.output(name)), sim_b.value(net))
            << "output '" << name << "' diverged at run " << run << " cycle "
            << cycle;
      }
      sim_a.step();
      sim_b.step();
    }
  }
}

/// Checks one property with preprocessing on and off and requires verdict,
/// bound_used and the canonical counterexample to be bit-identical —
/// the McCoi equivalence pattern, now pinning the optimizer.
void expect_opt_equivalent(const mc::ModelChecker& checker, const mc::Property& prop,
                           const std::map<rtl::Net, bool>& faults,
                           mc::ModelChecker::Options options) {
  options.optimize = true;
  const auto with_opt = checker.check_with_faults(prop, faults, options);
  options.optimize = false;
  const auto without = checker.check_with_faults(prop, faults, options);
  EXPECT_EQ(with_opt.status, without.status) << prop.name;
  EXPECT_EQ(with_opt.bound_used, without.bound_used) << prop.name;
  ASSERT_EQ(with_opt.counterexample.has_value(), without.counterexample.has_value())
      << prop.name;
  if (with_opt.counterexample.has_value()) {
    EXPECT_EQ(with_opt.counterexample->inputs, without.counterexample->inputs)
        << prop.name;
  }
  // Preprocessing may only shrink the encoding, never grow it.
  EXPECT_LE(with_opt.solver_variables, without.solver_variables) << prop.name;
}

}  // namespace

// ----------------------------------------------------------- rewrite rules

TEST(OptRewrite, FoldsLocalRedundancy) {
  rtl::Netlist n{"rules"};
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  n.set_output("dup1", n.add_and(a, b));
  n.set_output("dup2", n.add_and(b, a));        // commuted duplicate
  n.set_output("idem", n.add_and(a, a));        // x & x
  n.set_output("contra", n.add_and(a, n.add_not(a)));  // x & ~x
  n.set_output("dneg", n.add_not(n.add_not(b)));       // ~~x
  n.set_output("xzero", n.add_xor(a, a));       // x ^ x
  const auto t = n.add_or(a, b);
  n.set_output("muxeq", n.add_mux(a, t, t));    // equal arms

  const auto result = opt::optimize(n, pinned_options());
  const auto& o = result.netlist;
  // Commutative hashing: one AND serves both outputs.
  EXPECT_EQ(o.output("dup1"), o.output("dup2"));
  // x & x collapses to x itself (the input net).
  EXPECT_EQ(o.gate(o.output("idem")).kind, rtl::GateKind::input);
  // x & ~x is constant false, ~~x is x, x ^ x is constant false.
  EXPECT_EQ(o.gate(o.output("contra")).kind, rtl::GateKind::const0);
  EXPECT_EQ(o.gate(o.output("dneg")).kind, rtl::GateKind::input);
  EXPECT_EQ(o.gate(o.output("xzero")).kind, rtl::GateKind::const0);
  // Equal mux arms short the mux away entirely.
  EXPECT_EQ(o.gate(o.output("muxeq")).kind, rtl::GateKind::or_gate);
  EXPECT_LT(o.gate_count(), n.gate_count());
  EXPECT_EQ(result.gates_before(), n.gate_count());
  EXPECT_EQ(result.gates_after(), o.gate_count());
  // Per-pass histograms stay consistent with the pass's gate count.
  for (const auto& pass : result.passes) {
    std::size_t total = 0;
    for (const auto count : pass.histogram_after) total += count;
    EXPECT_EQ(total, pass.gates_after) << pass.pass;
  }
}

TEST(OptRewrite, DisabledOptionsReturnIdentity) {
  rtl::Netlist n{"idle"};
  const auto a = n.add_input("a");
  n.set_output("y", n.add_and(a, n.add_not(a)));  // foldable on purpose
  auto options = pinned_options();
  options.enabled = false;
  const auto result = opt::optimize(n, options);
  EXPECT_EQ(result.netlist.gate_count(), n.gate_count());
  EXPECT_TRUE(result.map.total());
  for (std::size_t i = 0; i < n.gate_count(); ++i) {
    EXPECT_EQ(result.map.translate(static_cast<rtl::Net>(i)),
              static_cast<rtl::Net>(i));
  }
  ASSERT_EQ(result.passes.size(), 1u);
  EXPECT_EQ(result.passes.front().pass, "disabled");
}

TEST(OptRewrite, ConstantArmsAndSelectInversion) {
  rtl::Netlist n{"muxrules"};
  const auto s = n.add_input("s");
  const auto e = n.add_input("e");
  const auto one = n.constant(true);
  const auto zero = n.constant(false);
  n.set_output("or_form", n.add_mux(s, one, e));    // s ? 1 : e  = s | e
  n.set_output("and_form", n.add_mux(s, e, zero));  // s ? e : 0  = s & e
  n.set_output("sel_const1", n.add_mux(one, s, e)); // 1 ? s : e  = s
  n.set_output("inv_sel", n.add_mux(n.add_not(s), e, one));  // = s | e

  const auto result = opt::optimize(n, pinned_options());
  const auto& o = result.netlist;
  EXPECT_EQ(o.gate(o.output("or_form")).kind, rtl::GateKind::or_gate);
  EXPECT_EQ(o.gate(o.output("and_form")).kind, rtl::GateKind::and_gate);
  EXPECT_EQ(o.gate(o.output("sel_const1")).kind, rtl::GateKind::input);
  // mux(~s, e, 1) = ~s ? e : 1 = mux(s, 1, e) = s | e — shares the gate.
  EXPECT_EQ(o.output("inv_sel"), o.output("or_form"));
}

TEST(OptRewrite, DeadGateEliminationFollowsPreservedOutputs) {
  rtl::Netlist n{"dead"};
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto live = n.add_and(a, b);
  const auto dead = n.add_xor(a, b);
  const auto dead_reg = n.add_dff(false, "deadreg");
  n.connect_next(dead_reg, dead);
  n.set_output("live", live);
  n.set_output("dead", dead_reg);

  auto options = pinned_options();
  options.preserve_outputs = {"live"};
  const auto result = opt::optimize(n, options);
  const auto& o = result.netlist;
  EXPECT_EQ(o.outputs().size(), 1u);
  EXPECT_EQ(result.map.translate(live), o.output("live"));
  EXPECT_EQ(result.map.translate(dead), -1);
  EXPECT_EQ(result.map.translate(dead_reg), -1);
  EXPECT_TRUE(o.flip_flops().empty());
  // Inputs are always kept, in declaration order, even when orphaned.
  ASSERT_EQ(o.inputs().size(), 2u);
  EXPECT_EQ(o.net_name(o.inputs()[0]), "a");
  EXPECT_EQ(o.net_name(o.inputs()[1]), "b");

  options.keep_all_nets = true;
  const auto total = opt::optimize(n, options);
  EXPECT_TRUE(total.map.total());
  EXPECT_EQ(total.netlist.flip_flops().size(), 1u);
}

TEST(OptRewrite, BakedFaultsFoldToConstants) {
  rtl::Netlist n{"faulty"};
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto g = n.add_and(a, b);
  n.set_output("y", n.add_or(g, a));

  const std::map<rtl::Net, bool> faults{{g, true}};  // and-gate stuck-at-1
  auto options = pinned_options();
  options.faults = &faults;
  const auto result = opt::optimize(n, options);
  // y = 1 | a = 1: the whole cone folds to the constant.
  EXPECT_EQ(result.netlist.gate(result.netlist.output("y")).kind,
            rtl::GateKind::const1);
}

// ------------------------------------------------------------ SAT sweeping

TEST(OptSweep, MergesStructurallyDifferentButEquivalentNets) {
  // x ^ y written two ways: the xor gate, and (x & ~y) | (~x & y). No
  // structural rule connects them — only the sweeper can.
  rtl::Netlist n{"sweepme"};
  const auto x = n.add_input("x");
  const auto y = n.add_input("y");
  const auto direct = n.add_xor(x, y);
  const auto expanded =
      n.add_or(n.add_and(x, n.add_not(y)), n.add_and(n.add_not(x), y));
  n.set_output("direct", direct);
  n.set_output("expanded", expanded);

  auto options = pinned_options();
  options.sweep = false;
  const auto unswept = opt::optimize(n, options);
  EXPECT_NE(unswept.netlist.output("direct"), unswept.netlist.output("expanded"));

  options.sweep = true;
  const auto swept = opt::optimize(n, options);
  EXPECT_EQ(swept.netlist.output("direct"), swept.netlist.output("expanded"));
  EXPECT_GE(swept.sweep_proofs(), 1u);
  EXPECT_LT(swept.netlist.gate_count(), unswept.netlist.gate_count());

  const auto check = opt::prove_equivalent(n, swept.netlist, {8, 3});
  EXPECT_NE(check.status, mc::CheckStatus::falsified);
}

TEST(OptSweep, ComplementMergesAndStateCutPoints) {
  // ~(x & y) vs (~x | ~y): equivalent with opposite structure (De Morgan),
  // merged with complement polarity through the same representative. The
  // flip-flop is a cut point: its output is never a victim.
  rtl::Netlist n{"demorgan"};
  const auto x = n.add_input("x");
  const auto y = n.add_input("y");
  const auto nand_form = n.add_not(n.add_and(x, y));
  const auto or_form = n.add_or(n.add_not(x), n.add_not(y));
  const auto d = n.add_dff(false, "state");
  n.connect_next(d, nand_form);
  n.set_output("nand_form", nand_form);
  n.set_output("or_form", or_form);
  n.set_output("state", d);

  const auto result = opt::optimize(n, pinned_options());
  EXPECT_EQ(result.netlist.output("nand_form"), result.netlist.output("or_form"));
  EXPECT_EQ(result.netlist.flip_flops().size(), 1u);
  const auto check = opt::prove_equivalent(n, result.netlist, {8, 3});
  EXPECT_NE(check.status, mc::CheckStatus::falsified);
}

TEST(OptSweep, SweeperStatsAreAccounted) {
  auto rng = symbad::test::rng("sweeper_stats");
  const auto n = random_netlist(rng, 4, 2, 40, 3);
  const auto pass1 = opt::optimize(n, [] {
    auto o = pinned_options();
    o.sweep = false;
    return o;
  }());
  opt::SatSweeper sweeper{pass1.netlist};
  const auto merges = sweeper.find_merges();
  const auto& stats = sweeper.stats();
  EXPECT_EQ(stats.proved, merges.size());
  EXPECT_LE(stats.proved + stats.refuted, stats.candidates);
  for (const auto& m : merges) {
    EXPECT_LT(m.onto, m.net);  // representative declared first
  }
}

// -------------------------------------------------- equivalence self-check

TEST(OptEquiv, DetectsARealDifference) {
  rtl::Netlist a{"left"};
  const auto ax = a.add_input("x");
  const auto ay = a.add_input("y");
  a.set_output("z", a.add_and(ax, ay));
  rtl::Netlist b{"right"};
  const auto bx = b.add_input("x");
  const auto by = b.add_input("y");
  b.set_output("z", b.add_or(bx, by));

  const auto differ = opt::prove_equivalent(a, b, {8, 3});
  EXPECT_EQ(differ.status, mc::CheckStatus::falsified);
  ASSERT_TRUE(differ.counterexample.has_value());

  const auto same = opt::prove_equivalent(a, a, {8, 3});
  EXPECT_NE(same.status, mc::CheckStatus::falsified);
}

TEST(OptEquiv, SeedRtlBlocksSurviveOptimization) {
  for (const auto& n : {app::build_wrapper_fsm(), app::build_distance_rtl(4, 8)}) {
    const auto result = opt::optimize(n, pinned_options());
    EXPECT_LE(result.netlist.gate_count(), n.gate_count()) << n.name();
    const auto check = opt::prove_equivalent(n, result.netlist, {8, 3});
    EXPECT_NE(check.status, mc::CheckStatus::falsified) << n.name();
  }
}

// ------------------------------------------------------------ fuzz harness

TEST(OptFuzz, OptimizedNetlistsSimulateIdentically) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    auto rng = symbad::test::rng(1000 + seed);
    const auto n = random_netlist(rng, 5, 3, 60, 4);
    const auto result = opt::optimize(n, pinned_options());
    EXPECT_LE(result.netlist.gate_count(), n.gate_count()) << "seed " << seed;
    auto stimulus = symbad::test::rng(2000 + seed);
    expect_simulation_equivalent(n, result.netlist, stimulus, 3, 32);
  }
}

TEST(OptFuzz, KeepAllNetsModeSimulatesIdenticallyToo) {
  // The ATPG mode: no dead elimination, NetMap total.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto rng = symbad::test::rng(3000 + seed);
    const auto n = random_netlist(rng, 4, 2, 40, 3);
    auto options = pinned_options();
    options.keep_all_nets = true;
    const auto result = opt::optimize(n, options);
    EXPECT_TRUE(result.map.total()) << "seed " << seed;
    auto stimulus = symbad::test::rng(4000 + seed);
    expect_simulation_equivalent(n, result.netlist, stimulus, 2, 24);
  }
}

TEST(OptFuzz, McVerdictsIdenticalOptOnVsOff) {
  // The acceptance gate, fuzzed: for random netlists and every property
  // kind, verdict / bound_used / canonical counterexample are identical
  // with preprocessing on or off.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto rng = symbad::test::rng(5000 + seed);
    const auto n = random_netlist(rng, 4, 3, 50, 3);
    const mc::ModelChecker checker{n};
    const mc::ModelChecker::Options options{8, 3};
    const auto o0 = mc::Expr::signal("o0");
    const auto o1 = mc::Expr::signal("o1");
    const auto o2 = mc::Expr::signal("o2");
    std::vector<mc::Property> props;
    props.push_back(mc::Property::invariant("inv_nand", !(o0 && o1)));
    props.push_back(mc::Property::invariant("inv_imp", o1.implies(o2)));
    props.push_back(mc::Property::next("next_imp", o0, o2));
    props.push_back(mc::Property::respond("resp", o2, o1, 2));
    for (const auto& prop : props) {
      expect_opt_equivalent(checker, prop, {}, options);
    }
  }
}

TEST(OptFuzz, McVerdictsIdenticalUnderInjectedFaults) {
  // Stuck-at variants (the PCC shape): the fault is baked into the
  // optimized netlist as a constant; verdicts must still match exactly.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    auto rng = symbad::test::rng(6000 + seed);
    const auto n = random_netlist(rng, 4, 3, 40, 2);
    const mc::ModelChecker checker{n};
    const auto prop = mc::Property::invariant(
        "inv", !(mc::Expr::signal("o0") && mc::Expr::signal("o1")));
    std::vector<rtl::Net> sites;
    for (std::size_t i = 0; i < n.gate_count() && sites.size() < 3; ++i) {
      const auto kind = n.gate(static_cast<rtl::Net>(i)).kind;
      if (kind == rtl::GateKind::and_gate || kind == rtl::GateKind::dff ||
          kind == rtl::GateKind::input) {
        sites.push_back(static_cast<rtl::Net>(i));
      }
    }
    for (const auto site : sites) {
      for (const bool stuck_to : {false, true}) {
        expect_opt_equivalent(checker, prop, {{site, stuck_to}}, {6, 3});
      }
    }
  }
}

// ------------------------------------------------- generative tier sweeps

TEST(OptGenerative, TieredNetlistsSimulateIdenticallyAfterOptimization) {
  // The shared generator's tier-shaped netlists (small/medium/large), each
  // optimized and required to simulate cycle-for-cycle like the original.
  // SYMBAD_GEN_COUNT / SYMBAD_GEN_TIER / SYMBAD_GEN_SEED reshape the sweep.
  const auto cfg = gen::SweepConfig::from_env();
  for (const auto tier : cfg.tiers()) {
    for (int i = 0; i < cfg.count; ++i) {
      const std::uint64_t seed = cfg.seed_at(i);
      const auto n = gen::generate_netlist(seed, tier);
      const auto result = opt::optimize(n, pinned_options());
      EXPECT_LE(result.netlist.gate_count(), n.gate_count())
          << gen::to_string(tier) << " seed " << seed;
      auto stimulus = symbad::test::rng(seed ^ 0xC0FFEEULL);
      expect_simulation_equivalent(n, result.netlist, stimulus, 2, 24);
    }
  }
}

TEST(OptGenerative, TieredMcVerdictsIdenticalOptOnVsOff) {
  // The opt-on/off differential gate over the generated corpus: for every
  // tier, N generated netlists, one invariant and one next property each —
  // verdict / bound_used / canonical counterexample bit-identical.
  const auto cfg = gen::SweepConfig::from_env();
  for (const auto tier : cfg.tiers()) {
    for (int i = 0; i < cfg.count; ++i) {
      const std::uint64_t seed = cfg.seed_at(i);
      const auto n = gen::generate_netlist(seed, tier);
      const mc::ModelChecker checker{n};
      const auto o0 = mc::Expr::signal("o0");
      const auto o1 = mc::Expr::signal("o1");
      expect_opt_equivalent(checker, mc::Property::invariant("inv_nand", !(o0 && o1)),
                            {}, {4, 2});
      expect_opt_equivalent(checker, mc::Property::next("next_imp", o0, o1), {},
                            {4, 2});
    }
  }
}

// ------------------------------------------------- seed-design equivalence

TEST(OptMc, SeedPropertiesIdenticalOptOnVsOff) {
  {
    const auto fsm = app::build_wrapper_fsm();
    const mc::ModelChecker checker{fsm};
    for (const auto& prop : app::wrapper_properties_extended()) {
      expect_opt_equivalent(checker, prop, {}, {12, 4});
    }
  }
  {
    const auto root = app::build_root_rtl();
    const mc::ModelChecker checker{root};
    const auto prop = mc::Property::invariant(
        "busy_xor_done_weak",
        !(mc::Expr::signal("busy") && mc::Expr::signal("done")));
    expect_opt_equivalent(checker, prop, {}, {10, 3});
  }
}

TEST(OptMc, SeedFaultVariantsIdenticalOptOnVsOff) {
  const auto fsm = app::build_wrapper_fsm();
  const mc::ModelChecker checker{fsm};
  const auto props = app::wrapper_properties_initial();
  std::vector<rtl::Net> sites;
  for (std::size_t i = 0; i < fsm.gate_count() && sites.size() < 4; ++i) {
    const auto kind = fsm.gate(static_cast<rtl::Net>(i)).kind;
    if (kind == rtl::GateKind::and_gate || kind == rtl::GateKind::dff) {
      sites.push_back(static_cast<rtl::Net>(i));
    }
  }
  ASSERT_GE(sites.size(), 2u);
  for (const auto site : sites) {
    for (const bool stuck_to : {false, true}) {
      const std::map<rtl::Net, bool> faults{{site, stuck_to}};
      for (const auto& prop : props) {
        expect_opt_equivalent(checker, prop, faults, {6, 3});
      }
    }
  }
}

TEST(OptMc, PreprocessingShrinksRootEncoding) {
  // The measurable point of the subsystem: on the ROOT core's control
  // property the optimized encoding is strictly smaller, compounding with
  // the cone-of-influence reduction (both on by default).
  const auto root = app::build_root_rtl();
  const mc::ModelChecker checker{root};
  const auto prop = mc::Property::invariant(
      "busy_done_exclusive", !(mc::Expr::signal("busy") && mc::Expr::signal("done")));
  mc::ModelChecker::Options options{10, 3};
  options.optimize = true;
  const auto reduced = checker.check(prop, options);
  options.optimize = false;
  const auto full = checker.check(prop, options);
  EXPECT_EQ(reduced.status, full.status);
  EXPECT_LT(reduced.solver_variables, full.solver_variables);
  EXPECT_LT(reduced.solver_clauses, full.solver_clauses);
}

// ----------------------------------------------------------- ATPG parity

TEST(OptAtpg, DetectabilityIdenticalOptOnVsOff) {
  for (const auto& n : {app::build_wrapper_fsm(), app::build_distance_rtl(4, 8)}) {
    std::vector<std::pair<rtl::Net, bool>> faults;
    for (const rtl::Net ff : n.flip_flops()) {
      faults.emplace_back(ff, false);
      faults.emplace_back(ff, true);
    }
    atpg::SatEngine with_opt{n, {3, true}};
    atpg::SatEngine without{n, {3, false}};
    const auto r_on = with_opt.generate_tests(faults);
    const auto r_off = without.generate_tests(faults);
    ASSERT_EQ(r_on.size(), r_off.size());
    for (std::size_t i = 0; i < r_on.size(); ++i) {
      EXPECT_EQ(r_on[i].test.has_value(), r_off[i].test.has_value())
          << n.name() << " fault net " << r_on[i].net << " stuck-at-"
          << r_on[i].stuck_to;
      if (r_on[i].test.has_value()) {
        // The trace itself may differ (different CNF, same semantics); it
        // must still detect the fault in cycle-accurate simulation.
        rtl::Simulator good{n};
        rtl::Simulator bad{n};
        bad.inject_stuck_at(r_on[i].net, r_on[i].stuck_to);
        bool detected = false;
        for (const auto& frame : r_on[i].test->frames) {
          for (const auto& [name, value] : frame) {
            good.set_input(name, value);
            bad.set_input(name, value);
          }
          good.eval();
          bad.eval();
          for (const auto& [name, net] : n.outputs()) {
            if (good.value(net) != bad.value(net)) detected = true;
          }
          good.step();
          bad.step();
        }
        EXPECT_TRUE(detected) << n.name() << " fault net " << r_on[i].net;
      }
    }
  }
}

// ------------------------------------------- check_all live-cone shrink

namespace {

/// Two independent blocks: a wide OR-tree feeding one register (property
/// falsified at bound 1, big cone) and a quiet 2-bit chain that never
/// rises (clean through every bound, tiny cone).
rtl::Netlist two_block_netlist() {
  rtl::Netlist n{"twoblock"};
  rtl::Word wide = rtl::make_inputs(n, "w", 16);
  const auto any = rtl::reduce_or(n, wide);
  const auto a = n.add_dff(false, "a");
  n.connect_next(a, any);
  const auto en = n.add_input("en");
  const auto b0 = n.add_dff(false, "b0");
  const auto b1 = n.add_dff(false, "b1");
  n.connect_next(b0, n.add_and(b0, en));
  n.connect_next(b1, n.add_and(b0, b1));
  n.set_output("a_out", a);
  n.set_output("b_out", b1);
  return n;
}

}  // namespace

TEST(OptLiveCone, CheckAllDropsRetiredConesFromLaterBounds) {
  const auto n = two_block_netlist();
  const mc::ModelChecker checker{n};
  std::vector<mc::Property> props;
  props.push_back(
      mc::Property::invariant("a_never", !mc::Expr::signal("a_out")));  // falsified
  props.push_back(
      mc::Property::invariant("b_never", !mc::Expr::signal("b_out")));  // clean
  mc::ModelChecker::Options options{12, 3};

  options.live_cone = true;
  const auto live = checker.check_all(props, options);
  options.live_cone = false;
  const auto frozen = checker.check_all(props, options);

  // Same verdicts, bounds and canonical counterexamples...
  ASSERT_EQ(live.results.size(), frozen.results.size());
  for (std::size_t i = 0; i < props.size(); ++i) {
    EXPECT_EQ(live.results[i].status, frozen.results[i].status) << props[i].name;
    EXPECT_EQ(live.results[i].bound_used, frozen.results[i].bound_used)
        << props[i].name;
    ASSERT_EQ(live.results[i].counterexample.has_value(),
              frozen.results[i].counterexample.has_value());
    if (live.results[i].counterexample.has_value()) {
      EXPECT_EQ(live.results[i].counterexample->inputs,
                frozen.results[i].counterexample->inputs)
          << props[i].name;
    }
  }
  EXPECT_EQ(live.results[0].status, mc::CheckStatus::falsified);
  // ...but after 'a_never' retires, the 16-input OR tree stops being
  // encoded, so the final solver is strictly smaller.
  EXPECT_GE(live.cone_recomputes, 1u);
  EXPECT_EQ(frozen.cone_recomputes, 0u);
  EXPECT_LT(live.solver_variables, frozen.solver_variables);
  EXPECT_LT(live.solver_clauses, frozen.solver_clauses);

  // And the per-property results still match fully-individual checks.
  for (std::size_t i = 0; i < props.size(); ++i) {
    const auto single = checker.check(props[i], options);
    EXPECT_EQ(live.results[i].status, single.status) << props[i].name;
    EXPECT_EQ(live.results[i].bound_used, single.bound_used) << props[i].name;
  }
}

// ------------------------------------------------------- environment knobs

TEST(OptEnv, MasterSwitchDisablesPreprocessing) {
  const auto fsm = app::build_wrapper_fsm();
  const mc::ModelChecker checker{fsm};
  const auto prop = app::wrapper_properties_extended().front();

  mc::ModelChecker::Options options{8, 3};
  options.optimize = false;
  const auto reference = checker.check(prop, options);

  ::setenv("SYMBAD_OPT", "0", 1);
  options.optimize = true;  // requested, but the env master switch wins
  const auto disabled = checker.check(prop, options);
  ::unsetenv("SYMBAD_OPT");
  EXPECT_EQ(disabled.solver_variables, reference.solver_variables);
  EXPECT_EQ(disabled.solver_clauses, reference.solver_clauses);
}

TEST(OptEnv, KnobsParseStrictly) {
  ::setenv("SYMBAD_OPT", "banana", 1);
  EXPECT_THROW(opt::OptimizerOptions::from_env(), std::invalid_argument);
  ::setenv("SYMBAD_OPT", "1", 1);
  ::setenv("SYMBAD_OPT_SWEEP_ROUNDS", "0", 1);  // out of [1, 64]
  EXPECT_THROW(opt::OptimizerOptions::from_env(), std::invalid_argument);
  ::unsetenv("SYMBAD_OPT_SWEEP_ROUNDS");
  ::setenv("SYMBAD_OPT_SWEEP", "0", 1);
  EXPECT_FALSE(opt::OptimizerOptions::from_env().sweep);
  ::unsetenv("SYMBAD_OPT_SWEEP");
  ::unsetenv("SYMBAD_OPT");
  EXPECT_TRUE(opt::OptimizerOptions::from_env().enabled);
}

// Tests for the campaign-cached incremental optimizer (opt::PreprocessSession)
// and its plumbing through mc::ModelChecker, pcc::check_property_coverage and
// atpg::SatEngine. The acceptance gate is three-way identity: for every fault,
// the incremental cone splice, the full per-fault rebuild and the optimize-off
// path must agree bit-for-bit on verdict, bound_used, canonical
// counterexample, coverage verdict and ATPG detectability.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "app/rtl_blocks.hpp"
#include "atpg/atpg.hpp"
#include "gen/gen.hpp"
#include "mc/mc.hpp"
#include "opt/optimizer.hpp"
#include "opt/session.hpp"
#include "pcc/pcc.hpp"
#include "rtl/netlist.hpp"
#include "support/test_util.hpp"

namespace opt = symbad::opt;
namespace mc = symbad::mc;
namespace rtl = symbad::rtl;
namespace app = symbad::app;
namespace atpg = symbad::atpg;
namespace pcc = symbad::pcc;
namespace gen = symbad::gen;
using symbad::verif::Rng;

namespace {

/// Optimizer options that keep the pipeline deterministic regardless of
/// the SYMBAD_OPT* environment (tests must not depend on ambient knobs).
opt::OptimizerOptions pinned_options() {
  opt::OptimizerOptions o;  // defaults, not from_env
  return o;
}

/// Same seeded random netlist generator as test_opt.cpp — the shared
/// gen::random_netlist recipe (identical Rng stream, identical instances),
/// so both the baseline pipeline and the per-fault splice have real work.
rtl::Netlist random_netlist(Rng& rng, int n_inputs, int n_dffs, int n_gates,
                            int n_outputs) {
  return gen::random_netlist(rng, {n_inputs, n_dffs, n_gates, n_outputs, 0.25});
}

/// Internal fault sites of the PCC shape: a few gates/registers, skipping
/// constants and inputs, spread over the netlist.
std::vector<rtl::Net> sample_fault_sites(const rtl::Netlist& n, std::size_t want) {
  std::vector<rtl::Net> sites;
  const std::size_t stride = n.gate_count() / want + 1;
  for (std::size_t i = 0; i < n.gate_count() && sites.size() < want; ++i) {
    const std::size_t idx = (i * stride) % n.gate_count();
    const auto kind = n.gate(static_cast<rtl::Net>(idx)).kind;
    if (kind == rtl::GateKind::const0 || kind == rtl::GateKind::const1 ||
        kind == rtl::GateKind::input) {
      continue;
    }
    if (std::find(sites.begin(), sites.end(), static_cast<rtl::Net>(idx)) ==
        sites.end()) {
      sites.push_back(static_cast<rtl::Net>(idx));
    }
  }
  return sites;
}

/// Drives the original netlist with the fault injected into the simulator
/// against the spliced netlist with the fault baked in as a constant, and
/// requires every preserved output to agree on every cycle.
void expect_splice_simulates_fault(const rtl::Netlist& original,
                                   const std::map<rtl::Net, bool>& faults,
                                   const rtl::Netlist& spliced, Rng& rng,
                                   int runs, int cycles) {
  rtl::Simulator sim_ref{original};
  rtl::Simulator sim_opt{spliced};
  for (int run = 0; run < runs; ++run) {
    sim_ref.reset();
    sim_ref.clear_faults();
    for (const auto& [net, value] : faults) sim_ref.inject_stuck_at(net, value);
    sim_opt.reset();
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (const rtl::Net in : original.inputs()) {
        const bool value = (rng.next() & 1) != 0;
        sim_ref.set_input(original.net_name(in), value);
        sim_opt.set_input(original.net_name(in), value);
      }
      sim_ref.eval();
      sim_opt.eval();
      for (const auto& [name, net] : spliced.outputs()) {
        ASSERT_EQ(sim_ref.value(original.output(name)), sim_opt.value(net))
            << "output '" << name << "' diverged at run " << run << " cycle "
            << cycle;
      }
      sim_ref.step();
      sim_opt.step();
    }
  }
}

/// The acceptance gate: one property, one fault set, three preprocessing
/// modes — incremental splice, full per-fault rebuild, optimize off. The
/// verdict, bound_used and canonical counterexample must be bit-identical.
void expect_three_way_identical(const mc::ModelChecker& checker,
                                const mc::Property& prop,
                                const std::map<rtl::Net, bool>& faults,
                                mc::ModelChecker::Options options,
                                const opt::PreprocessSession& incremental,
                                const opt::PreprocessSession& full) {
  options.optimize = true;
  options.preprocess_session = &incremental;
  const auto r_inc = checker.check_with_faults(prop, faults, options);
  options.preprocess_session = &full;
  const auto r_full = checker.check_with_faults(prop, faults, options);
  options.preprocess_session = nullptr;
  options.optimize = false;
  const auto r_off = checker.check_with_faults(prop, faults, options);

  EXPECT_EQ(r_inc.status, r_full.status) << prop.name;
  EXPECT_EQ(r_inc.status, r_off.status) << prop.name;
  EXPECT_EQ(r_inc.bound_used, r_full.bound_used) << prop.name;
  EXPECT_EQ(r_inc.bound_used, r_off.bound_used) << prop.name;
  ASSERT_EQ(r_inc.counterexample.has_value(), r_off.counterexample.has_value())
      << prop.name;
  ASSERT_EQ(r_full.counterexample.has_value(), r_off.counterexample.has_value())
      << prop.name;
  if (r_inc.counterexample.has_value()) {
    EXPECT_EQ(r_inc.counterexample->inputs, r_off.counterexample->inputs)
        << prop.name;
    EXPECT_EQ(r_full.counterexample->inputs, r_off.counterexample->inputs)
        << prop.name;
  }
  // The result advertises which path served it (the bench counters key off
  // this): the splice only for faulty checks, never the full rebuild.
  EXPECT_EQ(r_inc.opt_incremental, !faults.empty()) << prop.name;
  EXPECT_FALSE(r_full.opt_incremental) << prop.name;
  EXPECT_FALSE(r_off.opt_incremental) << prop.name;
  EXPECT_GT(r_inc.opt_gates_before, 0u) << prop.name;
  EXPECT_EQ(r_off.opt_gates_before, 0u) << prop.name;
}

}  // namespace

// ----------------------------------------------------------- session core

TEST(IncSession, BaselineMatchesOneShotOptimizerRun) {
  const auto fsm = app::build_wrapper_fsm();
  const opt::PreprocessSession session{fsm, pinned_options()};
  ASSERT_TRUE(session.enabled());
  const auto reference = opt::optimize(fsm, pinned_options());
  EXPECT_EQ(session.baseline().netlist.gate_count(), reference.netlist.gate_count());
  EXPECT_EQ(session.baseline().gates_before(), reference.gates_before());
  EXPECT_EQ(session.baseline().gates_after(), reference.gates_after());
  EXPECT_EQ(session.baseline().map.old_to_new, reference.map.old_to_new);

  // Empty fault set: a copy of the cached baseline, not a re-run; the
  // fault-serving statistics stay untouched.
  const auto copy = session.reoptimize({});
  EXPECT_EQ(copy.netlist.gate_count(), session.baseline().netlist.gate_count());
  EXPECT_FALSE(copy.incremental());
  EXPECT_EQ(session.stats().reoptimizes, 0u);
}

TEST(IncSession, SpliceExtendsBaselineAndSimulatesTheFault) {
  const auto fsm = app::build_wrapper_fsm();
  const opt::PreprocessSession session{fsm, pinned_options()};
  const auto sites = sample_fault_sites(fsm, 4);
  ASSERT_GE(sites.size(), 2u);
  std::size_t served = 0;
  for (const auto site : sites) {
    for (const bool stuck_to : {false, true}) {
      const std::map<rtl::Net, bool> faults{{site, stuck_to}};
      const auto reopt = session.reoptimize(faults);
      EXPECT_TRUE(reopt.incremental());
      ++served;
      // Delta mode extends a copy of the baseline: the baseline's gates
      // survive as an identical prefix (kind and operands), the splice only
      // appends.
      const auto& base = session.baseline().netlist;
      ASSERT_GE(reopt.netlist.gate_count(), base.gate_count());
      for (std::size_t i = 0; i < base.gate_count(); ++i) {
        const auto& bg = base.gate(static_cast<rtl::Net>(i));
        const auto& sg = reopt.netlist.gate(static_cast<rtl::Net>(i));
        ASSERT_EQ(bg.kind, sg.kind) << "net " << i;
        if (bg.kind != rtl::GateKind::dff) {
          // DFF next-state pointers are exactly what the splice re-points.
          ASSERT_EQ(bg.a, sg.a) << "net " << i;
          ASSERT_EQ(bg.b, sg.b) << "net " << i;
          ASSERT_EQ(bg.c, sg.c) << "net " << i;
        }
      }
      reopt.netlist.validate();
      auto stimulus = symbad::test::rng(9000 + static_cast<std::uint64_t>(site) * 2 +
                                        (stuck_to ? 1 : 0));
      expect_splice_simulates_fault(fsm, faults, reopt.netlist, stimulus, 3, 24);
    }
  }
  EXPECT_EQ(session.stats().reoptimizes, served);
  EXPECT_EQ(session.stats().incremental, served);
  EXPECT_EQ(session.stats().full_rebuilds, 0u);
  // The splice re-optimizes cone nets only — on average far fewer than the
  // whole netlist, which is where the campaign speedup comes from.
  EXPECT_LT(session.stats().cone_nets, served * fsm.gate_count());
  EXPECT_GT(session.stats().cone_nets, 0u);
}

TEST(IncSession, IncrementalOffFallsBackToFullRebuild) {
  const auto fsm = app::build_wrapper_fsm();
  auto options = pinned_options();
  options.incremental = false;
  const opt::PreprocessSession session{fsm, options};
  const auto sites = sample_fault_sites(fsm, 1);
  ASSERT_FALSE(sites.empty());
  const std::map<rtl::Net, bool> faults{{sites.front(), true}};
  const auto reopt = session.reoptimize(faults);
  EXPECT_FALSE(reopt.incremental());
  EXPECT_EQ(session.stats().reoptimizes, 1u);
  EXPECT_EQ(session.stats().incremental, 0u);
  EXPECT_EQ(session.stats().full_rebuilds, 1u);

  // The fallback is exactly the session-free per-fault path: a fresh
  // pipeline run with the faults baked in and the sweep off.
  auto oneshot = pinned_options();
  oneshot.faults = &faults;
  oneshot.sweep = false;
  const auto reference = opt::optimize(fsm, oneshot);
  EXPECT_EQ(reopt.netlist.gate_count(), reference.netlist.gate_count());
  EXPECT_EQ(reopt.map.old_to_new, reference.map.old_to_new);
}

TEST(IncSession, ConstructionAndUseValidate) {
  const auto fsm = app::build_wrapper_fsm();
  const std::map<rtl::Net, bool> faults{{fsm.output("busy"), true}};
  auto options = pinned_options();
  options.faults = &faults;  // faults belong to reoptimize, not the baseline
  EXPECT_THROW((opt::PreprocessSession{fsm, options}), std::invalid_argument);

  auto disabled_options = pinned_options();
  disabled_options.enabled = false;
  const opt::PreprocessSession disabled{fsm, disabled_options};
  EXPECT_FALSE(disabled.enabled());
  EXPECT_THROW((void)disabled.reoptimize({}), std::logic_error);

  // mc rejects a session built over a different netlist...
  const opt::PreprocessSession session{fsm, pinned_options()};
  const auto other = app::build_wrapper_fsm();
  const mc::ModelChecker checker{other};
  mc::ModelChecker::Options mc_opts{6, 3};
  mc_opts.preprocess_session = &session;
  const auto prop = mc::Property::invariant(
      "ack_implies_busy", mc::Expr::signal("ack").implies(mc::Expr::signal("busy")));
  EXPECT_THROW((void)checker.check(prop, mc_opts), std::invalid_argument);

  // ...and one that does not preserve an observed output.
  auto narrow = pinned_options();
  narrow.preserve_outputs = {"busy"};
  const opt::PreprocessSession narrow_session{fsm, narrow};
  const mc::ModelChecker same{fsm};
  mc_opts.preprocess_session = &narrow_session;
  EXPECT_THROW((void)same.check(prop, mc_opts), std::invalid_argument);
}

// ------------------------------------------------------- mc-level identity

TEST(IncMc, WrapperFaultCampaignThreeWayIdentical) {
  const auto fsm = app::build_wrapper_fsm();
  const mc::ModelChecker checker{fsm};
  const opt::PreprocessSession incremental{fsm, pinned_options()};
  auto full_options = pinned_options();
  full_options.incremental = false;
  const opt::PreprocessSession full{fsm, full_options};

  const auto props = app::wrapper_properties_initial();
  const auto sites = sample_fault_sites(fsm, 4);
  ASSERT_GE(sites.size(), 2u);
  for (const auto site : sites) {
    for (const bool stuck_to : {false, true}) {
      const std::map<rtl::Net, bool> faults{{site, stuck_to}};
      for (const auto& prop : props) {
        expect_three_way_identical(checker, prop, faults, {6, 3}, incremental, full);
      }
    }
  }
  EXPECT_GT(incremental.stats().incremental, 0u);
  EXPECT_GT(full.stats().full_rebuilds, 0u);
}

TEST(IncMc, FaultFreeChecksServedFromTheCachedBaseline) {
  const auto fsm = app::build_wrapper_fsm();
  const mc::ModelChecker checker{fsm};
  const opt::PreprocessSession session{fsm, pinned_options()};
  auto full_options = pinned_options();
  full_options.incremental = false;
  const opt::PreprocessSession full{fsm, full_options};
  for (const auto& prop : app::wrapper_properties_extended()) {
    expect_three_way_identical(checker, prop, {}, {12, 4}, session, full);
  }
  // No faults — nothing to splice or rebuild.
  EXPECT_EQ(session.stats().reoptimizes, 0u);
  EXPECT_EQ(full.stats().reoptimizes, 0u);
}

TEST(IncFuzz, RandomNetlistFaultCampaignsThreeWayIdentical) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    auto rng = symbad::test::rng(7000 + seed);
    const auto n = random_netlist(rng, 4, 3, 40, 2);
    const mc::ModelChecker checker{n};
    const opt::PreprocessSession incremental{n, pinned_options()};
    auto full_options = pinned_options();
    full_options.incremental = false;
    const opt::PreprocessSession full{n, full_options};
    const auto prop = mc::Property::invariant(
        "inv", !(mc::Expr::signal("o0") && mc::Expr::signal("o1")));
    const auto next = mc::Property::next("next_imp", mc::Expr::signal("o0"),
                                         mc::Expr::signal("o1"));
    for (const auto site : sample_fault_sites(n, 3)) {
      for (const bool stuck_to : {false, true}) {
        const std::map<rtl::Net, bool> faults{{site, stuck_to}};
        expect_three_way_identical(checker, prop, faults, {6, 3}, incremental, full);
        expect_three_way_identical(checker, next, faults, {6, 3}, incremental, full);
      }
    }
    // And the spliced netlists themselves simulate like the injected fault.
    for (const auto site : sample_fault_sites(n, 2)) {
      const std::map<rtl::Net, bool> faults{{site, true}};
      const auto reopt = incremental.reoptimize(faults);
      reopt.netlist.validate();
      auto stimulus = symbad::test::rng(8000 + seed);
      expect_splice_simulates_fault(n, faults, reopt.netlist, stimulus, 2, 24);
    }
  }
}

TEST(IncFuzz, GeneratedTierSweepThreeWayIdentical) {
  // The generated corpus (small/medium/large tiers) through the same
  // acceptance gate: incremental splice vs full per-fault rebuild vs
  // optimize-off, bit-identical per fault. SYMBAD_GEN_COUNT / _TIER / _SEED
  // reshape the sweep.
  const auto cfg = gen::SweepConfig::from_env();
  for (const auto tier : cfg.tiers()) {
    for (int i = 0; i < cfg.count; ++i) {
      const std::uint64_t seed = cfg.seed_at(i);
      const auto n = gen::generate_netlist(seed, tier);
      const mc::ModelChecker checker{n};
      const opt::PreprocessSession incremental{n, pinned_options()};
      auto full_options = pinned_options();
      full_options.incremental = false;
      const opt::PreprocessSession full{n, full_options};
      const auto prop = mc::Property::invariant(
          "inv", !(mc::Expr::signal("o0") && mc::Expr::signal("o1")));
      const auto sites = sample_fault_sites(n, 1);
      ASSERT_FALSE(sites.empty()) << gen::to_string(tier) << " seed " << seed;
      for (const bool stuck_to : {false, true}) {
        const std::map<rtl::Net, bool> faults{{sites.front(), stuck_to}};
        expect_three_way_identical(checker, prop, faults, {4, 2}, incremental, full);
      }
      EXPECT_GT(incremental.stats().incremental, 0u)
          << gen::to_string(tier) << " seed " << seed;
    }
  }
}

// ------------------------------------------------------ pcc-level identity

TEST(IncPcc, CoverageVerdictsIdenticalAcrossAllModes) {
  const auto fsm = app::build_wrapper_fsm();
  const auto props = app::wrapper_properties_initial();
  pcc::PccOptions options;
  options.bmc_bound = 6;
  // Keep simulation weak so a healthy share of faults reaches BMC grading.
  options.simulation_runs = 1;
  options.simulation_cycles = 16;

  // Pinned via the env knob both ways (the ambient default may be either —
  // CI re-runs this suite under SYMBAD_OPT_INCREMENTAL=0).
  ::setenv("SYMBAD_OPT_INCREMENTAL", "1", 1);
  const auto incremental = pcc::check_property_coverage(fsm, props, options);
  ::setenv("SYMBAD_OPT_INCREMENTAL", "0", 1);
  const auto full = pcc::check_property_coverage(fsm, props, options);
  ::unsetenv("SYMBAD_OPT_INCREMENTAL");
  auto off_options = options;
  off_options.optimize = false;
  const auto off = pcc::check_property_coverage(fsm, props, off_options);

  for (const auto* report : {&full, &off}) {
    EXPECT_EQ(incremental.total_faults, report->total_faults);
    EXPECT_EQ(incremental.detected, report->detected);
    EXPECT_EQ(incremental.detected_by_simulation, report->detected_by_simulation);
    EXPECT_EQ(incremental.detected_by_bmc, report->detected_by_bmc);
    ASSERT_EQ(incremental.undetected.size(), report->undetected.size());
    for (std::size_t i = 0; i < incremental.undetected.size(); ++i) {
      EXPECT_EQ(incremental.undetected[i].net, report->undetected[i].net);
      EXPECT_EQ(incremental.undetected[i].stuck_to, report->undetected[i].stuck_to);
    }
  }

  // The campaign actually exercised the cone splice / the full rebuild.
  EXPECT_GT(incremental.incremental_reopts, 0u);
  EXPECT_EQ(incremental.full_rebuilds, 0u);
  EXPECT_GT(full.full_rebuilds, 0u);
  EXPECT_EQ(full.incremental_reopts, 0u);
  EXPECT_EQ(off.incremental_reopts + off.full_rebuilds, 0u);

  // Preprocessing shrinks the per-fault encodings it graded, and both
  // session modes ran the same swept baseline exactly once.
  EXPECT_GT(incremental.opt_gates_before, incremental.opt_gates_after);
  EXPECT_LT(incremental.encoded_vars, off.encoded_vars);
  EXPECT_EQ(incremental.baseline_sweep_proofs, full.baseline_sweep_proofs);
  EXPECT_EQ(off.baseline_sweep_proofs, 0u);
  EXPECT_EQ(off.opt_gates_before, 0u);
}

// ----------------------------------------------------- atpg-level identity

TEST(IncAtpg, DetectabilityIdenticalWithSharedSession) {
  for (const auto& n : {app::build_wrapper_fsm(), app::build_distance_rtl(4, 8)}) {
    auto session_options = pinned_options();
    session_options.keep_all_nets = true;  // the map must stay total
    const opt::PreprocessSession session{n, session_options};

    std::vector<std::pair<rtl::Net, bool>> faults;
    for (const rtl::Net ff : n.flip_flops()) {
      faults.emplace_back(ff, false);
      faults.emplace_back(ff, true);
    }
    atpg::SatEngine::Options with_session{3, true, &session};
    atpg::SatEngine::Options opt_on{3, true, nullptr};
    atpg::SatEngine::Options opt_off{3, false, nullptr};
    atpg::SatEngine shared{n, with_session};
    atpg::SatEngine fresh{n, opt_on};
    atpg::SatEngine plain{n, opt_off};
    const auto r_shared = shared.generate_tests(faults);
    const auto r_fresh = fresh.generate_tests(faults);
    const auto r_plain = plain.generate_tests(faults);
    ASSERT_EQ(r_shared.size(), r_fresh.size());
    ASSERT_EQ(r_shared.size(), r_plain.size());
    for (std::size_t i = 0; i < r_shared.size(); ++i) {
      EXPECT_EQ(r_shared[i].test.has_value(), r_fresh[i].test.has_value())
          << n.name() << " fault net " << r_shared[i].net;
      EXPECT_EQ(r_shared[i].test.has_value(), r_plain[i].test.has_value())
          << n.name() << " fault net " << r_shared[i].net;
      if (r_shared[i].test.has_value()) {
        // The trace may differ (different CNF, same semantics); it must
        // still detect the fault in cycle-accurate simulation.
        rtl::Simulator good{n};
        rtl::Simulator bad{n};
        bad.inject_stuck_at(r_shared[i].net, r_shared[i].stuck_to);
        bool detected = false;
        for (const auto& frame : r_shared[i].test->frames) {
          for (const auto& [name, value] : frame) {
            good.set_input(name, value);
            bad.set_input(name, value);
          }
          good.eval();
          bad.eval();
          for (const auto& [name, net] : n.outputs()) {
            if (good.value(net) != bad.value(net)) detected = true;
          }
          good.step();
          bad.step();
        }
        EXPECT_TRUE(detected) << n.name() << " fault net " << r_shared[i].net;
      }
    }
  }
}

TEST(IncAtpg, SessionValidation) {
  const auto fsm = app::build_wrapper_fsm();
  // A dead-eliminating session (map not total) is rejected.
  auto narrow = pinned_options();
  narrow.preserve_outputs = {"busy"};  // drops the other output cones
  const opt::PreprocessSession partial{fsm, narrow};
  ASSERT_FALSE(partial.baseline().map.total());
  atpg::SatEngine::Options options{3, true, &partial};
  EXPECT_THROW((atpg::SatEngine{fsm, options}), std::invalid_argument);
  // So is a session over a different netlist.
  const auto other = app::build_wrapper_fsm();
  auto total = pinned_options();
  total.keep_all_nets = true;
  const opt::PreprocessSession foreign{other, total};
  options.session = &foreign;
  EXPECT_THROW((atpg::SatEngine{fsm, options}), std::invalid_argument);
  // A disabled session falls through to the unoptimized encoding.
  auto disabled_options = pinned_options();
  disabled_options.enabled = false;
  const opt::PreprocessSession disabled{fsm, disabled_options};
  options.session = &disabled;
  const atpg::SatEngine engine{fsm, options};
  EXPECT_GT(engine.solver().variable_count(), 0);
}

// ------------------------------------------------------- environment knobs

TEST(IncEnv, IncrementalKnobParsesStrictly) {
  ::setenv("SYMBAD_OPT_INCREMENTAL", "banana", 1);
  EXPECT_THROW(opt::OptimizerOptions::from_env(), std::invalid_argument);
  ::setenv("SYMBAD_OPT_INCREMENTAL", "0", 1);
  EXPECT_FALSE(opt::OptimizerOptions::from_env().incremental);
  ::setenv("SYMBAD_OPT_INCREMENTAL", "1", 1);
  EXPECT_TRUE(opt::OptimizerOptions::from_env().incremental);
  ::unsetenv("SYMBAD_OPT_INCREMENTAL");
  EXPECT_TRUE(opt::OptimizerOptions::from_env().incremental);  // default on
}

// Tests for the platform models: TLM bus/memory, CPU timing model and the
// reconfigurable FPGA device (src/tlm, src/cpu, src/fpga).

#include <gtest/gtest.h>

#include <vector>

#include "cpu/cpu.hpp"
#include "fpga/fpga.hpp"
#include "sim/kernel.hpp"
#include "support/test_util.hpp"
#include "tlm/bus.hpp"

namespace sim = symbad::sim;
namespace tlm = symbad::tlm;
namespace cpu = symbad::cpu;
namespace fpga = symbad::fpga;
using sim::Time;

namespace {

struct Platform {
  sim::Kernel kernel;
  tlm::Bus bus{kernel, "ahb", tlm::Bus::Config{50e6, 1, 1}};
  tlm::Memory ram{"ram", bus.clock_period(), tlm::Memory::Config{1, 0}};
  tlm::Memory flash{"flash", bus.clock_period(), tlm::Memory::Config{4, 1}};

  Platform() {
    bus.map(0x0000'0000, 0x1000'0000, ram);
    bus.map(0x4000'0000, 0x1000'0000, flash);
  }
};

sim::Process run_one_transfer(Platform& p, tlm::Payload payload, Time* done_at) {
  co_await p.bus.transport(payload);
  *done_at = p.kernel.now();
}

}  // namespace

// ------------------------------------------------------------------- Bus

TEST(Bus, SingleTransferTiming) {
  Platform p;
  Time done;
  // 16-beat read to RAM @50MHz: (1 arb + 16 beats + 1 ram) * 20ns = 360ns.
  p.kernel.spawn(run_one_transfer(p, {tlm::Command::read, 0x0, 16, "t"}, &done));
  p.kernel.run();
  EXPECT_EQ(done, Time::ns(360));
  EXPECT_EQ(p.bus.transactions(), 1u);
  EXPECT_EQ(p.bus.beats_transferred(), 16u);
  EXPECT_EQ(p.ram.accesses(), 1u);
  EXPECT_EQ(p.ram.read_beats(), 16u);
}

TEST(Bus, TransferTimingMatchesClosedFormForRandomBeats) {
  // Property form of the timing model: for any burst length, a solo read
  // costs (1 arb + beats + first_access + wait_states*beats) bus cycles.
  auto rng = symbad::test::rng("bus_random_beats");
  for (int trial = 0; trial < 16; ++trial) {
    Platform p;
    const auto beats = static_cast<std::uint32_t>(rng.range(1, 64));
    const bool to_flash = rng.chance(0.5);
    Time done;
    p.kernel.spawn(run_one_transfer(
        p, {tlm::Command::read, to_flash ? 0x4000'0000u : 0x0u, beats, "t"},
        &done));
    p.kernel.run();
    const std::int64_t cycles =
        1 + beats + (to_flash ? 4 + std::int64_t{beats} : 1);
    EXPECT_EQ(done, Time::ns(20 * cycles))
        << "beats=" << beats << (to_flash ? " flash" : " ram");
  }
}

TEST(Bus, FlashIsSlowerThanRam) {
  Platform p;
  const tlm::Payload to_ram{tlm::Command::read, 0x0, 8, "t"};
  const tlm::Payload to_flash{tlm::Command::read, 0x4000'0000, 8, "t"};
  EXPECT_LT(p.bus.transaction_time(to_ram), p.bus.transaction_time(to_flash));
}

TEST(Bus, ContentionSerialisesInitiators) {
  Platform p;
  Time done_a;
  Time done_b;
  p.kernel.spawn(run_one_transfer(p, {tlm::Command::read, 0x0, 16, "a"}, &done_a));
  p.kernel.spawn(run_one_transfer(p, {tlm::Command::read, 0x0, 16, "b"}, &done_b));
  p.kernel.run();
  // Second transfer starts only after the first completes.
  EXPECT_EQ(done_a, Time::ns(360));
  EXPECT_EQ(done_b, Time::ns(720));
  EXPECT_GT(p.bus.worst_grant_wait(), Time::zero());
  EXPECT_GT(p.bus.load(), 0.9);
}

TEST(Bus, UnmappedAddressThrows) {
  Platform p;
  EXPECT_THROW((void)p.bus.transaction_time({tlm::Command::read, 0x9000'0000, 1, "t"}),
               std::out_of_range);
}

TEST(Bus, OverlappingMappingRejected) {
  sim::Kernel kernel;
  tlm::Bus bus{kernel, "bus", {}};
  tlm::Memory m1{"m1", bus.clock_period(), {}};
  tlm::Memory m2{"m2", bus.clock_period(), {}};
  bus.map(0x0, 0x1000, m1);
  EXPECT_THROW(bus.map(0x800, 0x1000, m2), std::invalid_argument);
  EXPECT_THROW(bus.map(0x2000, 0, m2), std::invalid_argument);
}

// ------------------------------------------------------------------- CPU

TEST(Cpu, AnnotationScalesWithOpsAndClock) {
  cpu::TimingModel slow{cpu::CpuConfig{"ARM7", 50e6, 2.0, 0.25}};
  cpu::TimingModel fast{cpu::CpuConfig{"ARM9", 200e6, 2.0, 0.25}};
  EXPECT_EQ(slow.annotate(1000), Time::us(40));  // 2000 cycles @ 20ns
  EXPECT_EQ(fast.annotate(1000), Time::us(10));
  EXPECT_EQ(slow.cycles_for(1000), 2000u);
}

namespace {

sim::Process cpu_workload(cpu::CpuModel& core, Time* done) {
  co_await core.execute(1000);             // 1800 cycles @ 20 ns = 36 us
  co_await core.bus_write(0x0, 32);        // (1+32+1)*20ns
  co_await core.execute(500);
  *done = core.kernel().now();
}

}  // namespace

TEST(Cpu, ExecutesAnnotatedSections) {
  Platform p;
  cpu::CpuModel core{p.kernel, "arm7", cpu::CpuConfig{}, p.bus};
  Time done;
  p.kernel.spawn(cpu_workload(core, &done));
  p.kernel.run();
  EXPECT_EQ(core.ops_executed(), 1500u);
  // 1500 ops * 1.8 CPI * 20ns = 54us, plus 680ns of bus.
  EXPECT_EQ(done, Time::ns(54'000 + 680));
  EXPECT_GT(core.utilisation(), 0.9);
}

// ------------------------------------------------------------------ FPGA

namespace {

std::vector<fpga::ContextConfig> two_contexts() {
  fpga::ContextConfig c1;
  c1.name = "config1";
  c1.functions = {"DISTANCE"};
  c1.bitstream_words = 2048;
  fpga::ContextConfig c2;
  c2.name = "config2";
  c2.functions = {"ROOT"};
  c2.bitstream_words = 2048;
  return {c1, c2};
}

sim::Process fpga_scenario(fpga::FpgaDevice& dev, std::vector<std::string>* log) {
  co_await dev.load_context("config2");
  log->push_back("loaded:" + dev.current_context());
  co_await dev.run_function("ROOT", 10'000);
  log->push_back("ran ROOT");
  co_await dev.load_context("config1");
  co_await dev.run_function("DISTANCE", 5'000);
  log->push_back("ran DISTANCE");
}

}  // namespace

TEST(Fpga, ContextSwitchAndExecution) {
  Platform p;
  fpga::FpgaDevice dev{p.kernel, "efpga", two_contexts(), p.bus, {}};
  std::vector<std::string> log;
  p.kernel.spawn(fpga_scenario(dev, &log));
  p.kernel.run();
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(dev.reconfiguration_count(), 2u);
  EXPECT_TRUE(dev.violations().empty());
  EXPECT_EQ(dev.functions_executed(), 2u);
  EXPECT_GT(dev.reconfiguration_time(), Time::zero());
  // Bitstream downloads dominate bus traffic: 2 x 2048 beats.
  EXPECT_GE(p.bus.beats_transferred(), 4096u);
}

TEST(Fpga, ReloadingSameContextIsFree) {
  Platform p;
  fpga::FpgaDevice dev{p.kernel, "efpga", two_contexts(), p.bus, {}};
  auto scenario = [](fpga::FpgaDevice& d) -> sim::Process {
    co_await d.load_context("config1");
    co_await d.load_context("config1");  // no-op
  };
  p.kernel.spawn(scenario(dev));
  p.kernel.run();
  EXPECT_EQ(dev.reconfiguration_count(), 1u);
}

TEST(Fpga, ConsistencyViolationRecorded) {
  Platform p;
  fpga::FpgaDevice dev{p.kernel, "efpga", two_contexts(), p.bus, {}};
  auto scenario = [](fpga::FpgaDevice& d) -> sim::Process {
    co_await d.load_context("config2");   // ROOT available
    co_await d.run_function("DISTANCE", 100);  // violation!
  };
  p.kernel.spawn(scenario(dev));
  p.kernel.run();
  ASSERT_EQ(dev.violations().size(), 1u);
  EXPECT_EQ(dev.violations()[0].function, "DISTANCE");
  EXPECT_EQ(dev.violations()[0].loaded_context, "config2");
}

TEST(Fpga, TrapOnViolationThrows) {
  Platform p;
  fpga::FpgaDevice::Config cfg;
  cfg.trap_on_violation = true;
  fpga::FpgaDevice dev{p.kernel, "efpga", two_contexts(), p.bus, cfg};
  auto scenario = [](fpga::FpgaDevice& d) -> sim::Process {
    co_await d.run_function("ROOT", 100);  // nothing loaded
  };
  p.kernel.spawn(scenario(dev));
  EXPECT_THROW(p.kernel.run(), std::runtime_error);
}

TEST(Fpga, UnknownContextThrows) {
  Platform p;
  fpga::FpgaDevice dev{p.kernel, "efpga", two_contexts(), p.bus, {}};
  auto scenario = [](fpga::FpgaDevice& d) -> sim::Process {
    co_await d.load_context("config9");
  };
  p.kernel.spawn(scenario(dev));
  EXPECT_THROW(p.kernel.run(), std::out_of_range);
}

TEST(Fpga, DuplicateContextNamesRejected) {
  Platform p;
  auto contexts = two_contexts();
  contexts[1].name = "config1";
  EXPECT_THROW((fpga::FpgaDevice{p.kernel, "efpga", contexts, p.bus, {}}),
               std::invalid_argument);
}

TEST(Fpga, FabricFasterThanCpuForSameOps) {
  Platform p;
  fpga::FpgaDevice dev{p.kernel, "efpga", two_contexts(), p.bus, {}};
  cpu::TimingModel arm{cpu::CpuConfig{}};
  // 8 ops/cycle @25MHz vs 1.8 cycles/op @50MHz: fabric ~14x faster.
  EXPECT_LT(dev.function_time(100'000), arm.annotate(100'000));
}

// Tests for the RTL netlist IR, word-level builders, simulator and CNF
// encoding (src/rtl).

#include <gtest/gtest.h>

#include <cstdint>

#include "rtl/cnf.hpp"
#include "rtl/cone.hpp"
#include "rtl/netlist.hpp"
#include "rtl/wordops.hpp"
#include "sat/solver.hpp"
#include "support/test_util.hpp"

namespace rtl = symbad::rtl;
namespace sat = symbad::sat;
using rtl::Net;
using rtl::Netlist;
using rtl::Simulator;
using rtl::Word;

// ---------------------------------------------------------- construction

TEST(Netlist, OperandMustExist) {
  Netlist n;
  const Net a = n.add_input("a");
  EXPECT_THROW((void)n.add_and(a, 99), std::out_of_range);
}

TEST(Netlist, DuplicateInputNameRejected) {
  Netlist n;
  (void)n.add_input("a");
  EXPECT_THROW((void)n.add_input("a"), std::invalid_argument);
}

TEST(Netlist, UnconnectedDffFailsValidation) {
  Netlist n;
  (void)n.add_dff(false, "r");
  EXPECT_THROW(n.validate(), std::logic_error);
}

TEST(Netlist, DoubleConnectRejected) {
  Netlist n;
  const Net d = n.add_dff(false, "r");
  const Net one = n.constant(true);
  n.connect_next(d, one);
  EXPECT_THROW(n.connect_next(d, one), std::logic_error);
}

TEST(Netlist, AreaEstimateCountsGates) {
  Netlist n;
  const Net a = n.add_input("a");
  const Net b = n.add_input("b");
  (void)n.add_and(a, b);
  const Net d = n.add_dff(false, "r");
  n.connect_next(d, a);
  EXPECT_DOUBLE_EQ(n.area_estimate(), 1.0 + 4.0);
  const auto hist = n.gate_histogram();
  EXPECT_EQ(hist[rtl::gate_index(rtl::GateKind::and_gate)], 1u);
  EXPECT_EQ(hist[rtl::gate_index(rtl::GateKind::dff)], 1u);
  std::size_t total = 0;
  for (const auto count : hist) total += count;
  EXPECT_EQ(total, n.gate_count());
}

// ------------------------------------------------------------- simulator

TEST(Simulator, BasicGates) {
  Netlist n;
  const Net a = n.add_input("a");
  const Net b = n.add_input("b");
  n.set_output("and", n.add_and(a, b));
  n.set_output("or", n.add_or(a, b));
  n.set_output("xor", n.add_xor(a, b));
  n.set_output("not", n.add_not(a));

  Simulator sim{n};
  for (int va = 0; va <= 1; ++va) {
    for (int vb = 0; vb <= 1; ++vb) {
      sim.set_input("a", va != 0);
      sim.set_input("b", vb != 0);
      sim.eval();
      EXPECT_EQ(sim.output("and"), (va & vb) != 0);
      EXPECT_EQ(sim.output("or"), (va | vb) != 0);
      EXPECT_EQ(sim.output("xor"), (va ^ vb) != 0);
      EXPECT_EQ(sim.output("not"), va == 0);
    }
  }
}

TEST(Simulator, MuxSelects) {
  Netlist n;
  const Net s = n.add_input("s");
  const Net t = n.add_input("t");
  const Net e = n.add_input("e");
  n.set_output("y", n.add_mux(s, t, e));
  Simulator sim{n};
  sim.set_input("s", true);
  sim.set_input("t", true);
  sim.set_input("e", false);
  sim.eval();
  EXPECT_TRUE(sim.output("y"));
  sim.set_input("s", false);
  sim.eval();
  EXPECT_FALSE(sim.output("y"));
}

namespace {

/// Builds an 8-bit free-running counter.
Netlist make_counter(int width = 8) {
  Netlist n{"counter"};
  Word regs = rtl::make_registers(n, "cnt", width, 0);
  const Word one = rtl::make_constant(n, 1, width);
  const auto [next, carry] = rtl::add(n, regs, one);
  (void)carry;
  rtl::connect_registers(n, regs, next);
  rtl::set_output_word(n, "cnt", regs);
  return n;
}

std::uint64_t read_output_word(const Simulator& sim, const std::string& prefix,
                               int width) {
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    if (sim.output(prefix + "[" + std::to_string(i) + "]")) v |= std::uint64_t{1} << i;
  }
  return v;
}

}  // namespace

TEST(Simulator, CounterCountsAndWraps) {
  const Netlist n = make_counter(4);
  Simulator sim{n};
  for (std::uint64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(read_output_word(sim, "cnt", 4), i % 16);
    sim.step();
  }
  EXPECT_EQ(sim.cycles(), 40u);
  sim.reset();
  EXPECT_EQ(read_output_word(sim, "cnt", 4), 0u);
}

TEST(Simulator, DffInitValueRespected) {
  Netlist n;
  const Net d = n.add_dff(true, "r");
  n.connect_next(d, d);  // holds value
  n.set_output("q", d);
  Simulator sim{n};
  EXPECT_TRUE(sim.output("q"));
  sim.step();
  EXPECT_TRUE(sim.output("q"));
}

TEST(Simulator, StuckAtFaultOverridesValue) {
  Netlist n;
  const Net a = n.add_input("a");
  const Net b = n.add_input("b");
  const Net g = n.add_and(a, b);
  n.set_output("y", g);
  Simulator sim{n};
  sim.set_input("a", true);
  sim.set_input("b", true);
  sim.eval();
  EXPECT_TRUE(sim.output("y"));
  sim.inject_stuck_at(g, false);
  sim.eval();
  EXPECT_FALSE(sim.output("y"));
  EXPECT_TRUE(sim.has_faults());
  sim.clear_faults();
  sim.eval();
  EXPECT_TRUE(sim.output("y"));
}

// ---------------------------------------------------- word-op properties

class WordOpsRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(WordOpsRandom, ArithmeticMatchesReference) {
  auto rng = symbad::test::rng(GetParam());
  constexpr int kWidth = 12;
  const std::uint64_t mask = (1u << kWidth) - 1;

  Netlist n;
  const Word a = rtl::make_inputs(n, "a", kWidth);
  const Word b = rtl::make_inputs(n, "b", kWidth);
  const auto [sum, carry] = rtl::add(n, a, b);
  const auto [diff, no_borrow] = rtl::sub(n, a, b);
  const Net eq = rtl::equal(n, a, b);
  const Net lt = rtl::unsigned_less(n, a, b);
  const Net ge = rtl::unsigned_ge(n, a, b);
  const Word ad = rtl::absolute_difference(n, a, b);
  const Word shl = rtl::shift_left(n, a, 3);
  const Word shr = rtl::shift_right(n, a, 2);
  rtl::set_output_word(n, "sum", sum);
  n.set_output("carry", carry);
  rtl::set_output_word(n, "diff", diff);
  n.set_output("no_borrow", no_borrow);
  n.set_output("eq", eq);
  n.set_output("lt", lt);
  n.set_output("ge", ge);
  rtl::set_output_word(n, "ad", ad);
  rtl::set_output_word(n, "shl", shl);
  rtl::set_output_word(n, "shr", shr);

  Simulator sim{n};
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t va = rng.next() & mask;
    const std::uint64_t vb = rng.next() & mask;
    rtl::drive_word(sim, a, va);
    rtl::drive_word(sim, b, vb);
    sim.eval();
    EXPECT_EQ(rtl::read_word(sim, sum), (va + vb) & mask);
    EXPECT_EQ(sim.output("carry"), ((va + vb) >> kWidth) != 0);
    EXPECT_EQ(rtl::read_word(sim, diff), (va - vb) & mask);
    EXPECT_EQ(sim.output("no_borrow"), va >= vb);
    EXPECT_EQ(sim.output("eq"), va == vb);
    EXPECT_EQ(sim.output("lt"), va < vb);
    EXPECT_EQ(sim.output("ge"), va >= vb);
    EXPECT_EQ(rtl::read_word(sim, ad), va >= vb ? va - vb : vb - va);
    EXPECT_EQ(rtl::read_word(sim, shl), (va << 3) & mask);
    EXPECT_EQ(rtl::read_word(sim, shr), va >> 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WordOpsRandom, ::testing::Range(1u, 9u));

TEST(WordOps, WidthMismatchThrows) {
  Netlist n;
  const Word a = rtl::make_inputs(n, "a", 4);
  const Word b = rtl::make_inputs(n, "b", 5);
  EXPECT_THROW((void)rtl::add(n, a, b), std::invalid_argument);
}

TEST(WordOps, EqualConstant) {
  Netlist n;
  const Word a = rtl::make_inputs(n, "a", 6);
  n.set_output("is42", rtl::equal_constant(n, a, 42));
  Simulator sim{n};
  rtl::drive_word(sim, a, 42);
  sim.eval();
  EXPECT_TRUE(sim.output("is42"));
  rtl::drive_word(sim, a, 41);
  sim.eval();
  EXPECT_FALSE(sim.output("is42"));
}

// -------------------------------------------------------------- CNF

TEST(Cnf, CombinationalEquivalenceWithSimulator) {
  // Random circuit evaluated both ways must agree on the output.
  auto rng = symbad::test::rng(7);
  Netlist n;
  const Word a = rtl::make_inputs(n, "a", 8);
  const Word b = rtl::make_inputs(n, "b", 8);
  const auto [sum, carry] = rtl::add(n, a, b);
  (void)carry;
  const Net out = rtl::reduce_or(n, sum);
  n.set_output("y", out);

  Simulator sim{n};
  sat::Solver solver;
  rtl::CnfEncoder encoder{n, solver};
  rtl::CnfEncoder::Options opts;
  const rtl::Frame frame = encoder.encode(opts);

  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t va = rng.next() & 0xFF;
    const std::uint64_t vb = rng.next() & 0xFF;
    rtl::drive_word(sim, a, va);
    rtl::drive_word(sim, b, vb);
    sim.eval();
    const bool expected = sim.output("y");

    std::vector<sat::Lit> assumptions;
    for (int i = 0; i < 8; ++i) {
      auto la = frame.lit(a.bit(i));
      auto lb = frame.lit(b.bit(i));
      assumptions.push_back(((va >> i) & 1) != 0 ? la : ~la);
      assumptions.push_back(((vb >> i) & 1) != 0 ? lb : ~lb);
    }
    assumptions.push_back(expected ? frame.lit(out) : ~frame.lit(out));
    EXPECT_EQ(solver.solve(assumptions), sat::Result::sat);
    assumptions.back() = ~assumptions.back();
    EXPECT_EQ(solver.solve(assumptions), sat::Result::unsat);
  }
}

TEST(Cnf, MiterOfIdenticalCircuitsIsUnsat) {
  // Two copies of an adder with shared inputs can never differ.
  Netlist n;
  const Word a = rtl::make_inputs(n, "a", 6);
  const Word b = rtl::make_inputs(n, "b", 6);
  const auto [sum, carry] = rtl::add(n, a, b);
  (void)carry;
  rtl::set_output_word(n, "s", sum);

  sat::Solver solver;
  rtl::CnfEncoder encoder{n, solver};
  rtl::CnfEncoder::Options opts1;
  const rtl::Frame f1 = encoder.encode(opts1);

  std::vector<sat::Lit> shared;
  for (const Net in : n.inputs()) shared.push_back(f1.lit(in));
  rtl::CnfEncoder::Options opts2;
  opts2.shared_inputs = &shared;
  const rtl::Frame f2 = encoder.encode(opts2);

  // Build the difference clause from the output literals:
  // diff_i <-> (o1_i XOR o2_i); assert OR(diff_i).
  std::vector<sat::Lit> diff_clause;
  for (int i = 0; i < sum.width(); ++i) {
    const sat::Var d = solver.new_var();
    const sat::Lit dl = sat::Lit::positive(d);
    const sat::Lit x = f1.lit(sum.bit(i));
    const sat::Lit y = f2.lit(sum.bit(i));
    solver.add_ternary(~dl, x, y);
    solver.add_ternary(~dl, ~x, ~y);
    solver.add_ternary(dl, ~x, y);
    solver.add_ternary(dl, x, ~y);
    diff_clause.push_back(dl);
  }
  solver.add_clause(diff_clause);
  EXPECT_EQ(solver.solve(), sat::Result::unsat);
}

TEST(Cnf, StuckAtFaultMakesMiterSat) {
  // A faulty copy of the circuit must be distinguishable from the good one.
  Netlist n;
  const Word a = rtl::make_inputs(n, "a", 4);
  const Word b = rtl::make_inputs(n, "b", 4);
  const auto [sum, carry] = rtl::add(n, a, b);
  (void)carry;
  rtl::set_output_word(n, "s", sum);

  sat::Solver solver;
  rtl::CnfEncoder encoder{n, solver};
  rtl::CnfEncoder::Options good_opts;
  const rtl::Frame good = encoder.encode(good_opts);

  std::vector<sat::Lit> shared;
  for (const Net in : n.inputs()) shared.push_back(good.lit(in));
  std::map<Net, bool> faults{{sum.bit(0), true}};  // stuck-at-1 on sum LSB
  rtl::CnfEncoder::Options bad_opts;
  bad_opts.shared_inputs = &shared;
  bad_opts.faults = &faults;
  const rtl::Frame bad = encoder.encode(bad_opts);

  std::vector<sat::Lit> diff_clause;
  for (int i = 0; i < sum.width(); ++i) {
    const sat::Var d = solver.new_var();
    const sat::Lit dl = sat::Lit::positive(d);
    const sat::Lit x = good.lit(sum.bit(i));
    const sat::Lit y = bad.lit(sum.bit(i));
    solver.add_ternary(~dl, x, y);
    solver.add_ternary(~dl, ~x, ~y);
    solver.add_ternary(dl, ~x, y);
    solver.add_ternary(dl, x, ~y);
    diff_clause.push_back(dl);
  }
  solver.add_clause(diff_clause);
  EXPECT_EQ(solver.solve(), sat::Result::sat);
}

TEST(Cnf, ChainedFramesModelSequentialBehaviour) {
  // 4-bit counter: after 5 chained frames the counter equals 5 (and cannot
  // equal anything else).
  const Netlist n = make_counter(4);
  sat::Solver solver;
  rtl::CnfEncoder encoder{n, solver};

  rtl::CnfEncoder::Options opts0;
  opts0.state = rtl::StateInit::reset;
  rtl::Frame frame = encoder.encode(opts0);
  for (int k = 0; k < 5; ++k) {
    rtl::CnfEncoder::Options opts;
    opts.state = rtl::StateInit::chained;
    opts.previous = &frame;
    frame = encoder.encode(opts);
  }
  // State bits of final frame must equal 5 = 0b0101.
  const auto& dffs = n.flip_flops();
  std::vector<sat::Lit> assumptions;
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const sat::Lit l = frame.lit(dffs[i]);
    assumptions.push_back(((5u >> i) & 1) != 0 ? l : ~l);
  }
  EXPECT_EQ(solver.solve(assumptions), sat::Result::sat);
  assumptions[0] = ~assumptions[0];
  EXPECT_EQ(solver.solve(assumptions), sat::Result::unsat);
}

TEST(CnfChain, LazyChainMatchesManualUnrolling) {
  // The incremental chain API must model the same transition system as the
  // hand-chained encoding: after 5 frames from reset the counter equals 5.
  const Netlist n = make_counter(4);
  sat::Solver solver;
  rtl::CnfEncoder encoder{n, solver};
  encoder.begin_chain({});
  EXPECT_EQ(encoder.frame_count(), 0u);
  EXPECT_EQ(encoder.push_frame(), 0u);
  const auto& f5 = encoder.frame(5);  // lazily encodes frames 1..5
  EXPECT_EQ(encoder.frame_count(), 6u);

  const auto& dffs = n.flip_flops();
  std::vector<sat::Lit> assumptions;
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const sat::Lit l = f5.lit(dffs[i]);
    assumptions.push_back(((5u >> i) & 1) != 0 ? l : ~l);
  }
  EXPECT_EQ(solver.solve(assumptions), sat::Result::sat);
  assumptions[0] = ~assumptions[0];
  EXPECT_EQ(solver.solve(assumptions), sat::Result::unsat);
}

TEST(CnfChain, ConditionalResetPinsStateOnlyUnderActivation) {
  // With conditional_reset, the same solver answers both questions: from
  // reset the counter's bit 0 is 0 at frame 0 (assume the literal); from an
  // arbitrary state it may be 1 (leave the literal free).
  const Netlist n = make_counter(4);
  sat::Solver solver;
  rtl::CnfEncoder encoder{n, solver};
  const sat::Lit act = sat::Lit::positive(solver.new_var());
  rtl::CnfEncoder::ChainOptions chain;
  chain.conditional_reset = act;
  encoder.begin_chain(chain);
  const sat::Lit bit0 = encoder.frame(0).lit(n.flip_flops()[0]);

  EXPECT_EQ(solver.solve({act, bit0}), sat::Result::unsat);   // reset: cnt[0]=0
  EXPECT_EQ(solver.solve({act, ~bit0}), sat::Result::sat);
  EXPECT_EQ(solver.solve({bit0}), sat::Result::sat);          // free state
  EXPECT_EQ(solver.solve({~bit0}), sat::Result::sat);
}

TEST(CnfChain, PushFrameBeforeBeginChainThrows) {
  const Netlist n = make_counter(2);
  sat::Solver solver;
  rtl::CnfEncoder encoder{n, solver};
  EXPECT_THROW((void)encoder.push_frame(), std::logic_error);
}

TEST(CnfChain, RestartRecyclesFrameStorage) {
  // begin_chain returns the previous chain's literal vectors to a pool and
  // encode draws from that pool, so restarting a chain — the steady state
  // of per-property model checking — reuses frame storage instead of
  // reallocating it, and the recycled frames must still encode the same
  // transition system.
  const Netlist n = make_counter(4);
  sat::Solver solver;
  rtl::CnfEncoder encoder{n, solver};
  encoder.begin_chain({});
  (void)encoder.frame(3);
  std::vector<const sat::Lit*> old_storage;
  for (std::size_t k = 0; k < encoder.frame_count(); ++k) {
    old_storage.push_back(encoder.frame(k).lits.data());
  }

  encoder.begin_chain({});
  EXPECT_EQ(encoder.frame_count(), 0u);
  // The pool is LIFO and the vectors already have netlist-sized capacity,
  // so the restarted chain's frame 0 lands in the last recycled buffer.
  EXPECT_EQ(encoder.frame(0).lits.data(), old_storage.back());

  // And the recycled chain still models the counter: 5 frames from reset
  // reach exactly 5.
  const auto& f5 = encoder.frame(5);
  const auto& dffs = n.flip_flops();
  std::vector<sat::Lit> assumptions;
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const sat::Lit l = f5.lit(dffs[i]);
    assumptions.push_back(((5u >> i) & 1) != 0 ? l : ~l);
  }
  EXPECT_EQ(solver.solve(assumptions), sat::Result::sat);
  assumptions[0] = ~assumptions[0];
  EXPECT_EQ(solver.solve(assumptions), sat::Result::unsat);
}

// ------------------------------------------------------- cone traversals

namespace {

/// Two independent halves sharing the inputs' namespace: a 1-bit toggle
/// register driving output "t", and a combinational AND driving output "y".
Netlist make_two_cone_netlist() {
  Netlist n{"twocone"};
  const Net en = n.add_input("en");
  const Net a = n.add_input("a");
  const Net b = n.add_input("b");
  const Net t = n.add_dff(false, "t");
  n.connect_next(t, n.add_xor(t, en));
  n.set_output("t", t);
  n.set_output("y", n.add_and(a, b));
  return n;
}

}  // namespace

TEST(Netlist, ConeOfInfluenceClosesOverRegisters) {
  const Netlist n = make_two_cone_netlist();
  const Net t = n.output("t");
  const auto cone = n.cone_of_influence({t});
  // The register pulls in its next-state XOR and the `en` input...
  EXPECT_NE(cone[static_cast<std::size_t>(t)], 0);
  EXPECT_NE(cone[static_cast<std::size_t>(n.input("en"))], 0);
  EXPECT_NE(cone[static_cast<std::size_t>(n.gate(t).a)], 0);
  // ...but not the unrelated combinational half.
  EXPECT_EQ(cone[static_cast<std::size_t>(n.input("a"))], 0);
  EXPECT_EQ(cone[static_cast<std::size_t>(n.input("b"))], 0);
  EXPECT_EQ(cone[static_cast<std::size_t>(n.output("y"))], 0);

  EXPECT_EQ(n.register_support({t}), std::vector<Net>{t});
  EXPECT_TRUE(n.register_support({n.output("y")}).empty());
}

TEST(Netlist, ConeTracerCrossesRegisterBoundaryForward) {
  // Forward fault cone of `en`: frame 0 reaches the XOR (next-state) but
  // not the register output; from frame 1 on the corruption has latched.
  const Netlist n = make_two_cone_netlist();
  const rtl::ConeTracer tracer{n};
  const Net t = n.output("t");
  const auto cones = tracer.fault_cones(n.input("en"), 3);
  ASSERT_EQ(cones.size(), 3u);
  EXPECT_EQ(cones[0][static_cast<std::size_t>(t)], 0);
  EXPECT_NE(cones[0][static_cast<std::size_t>(n.gate(t).a)], 0);
  EXPECT_NE(cones[1][static_cast<std::size_t>(t)], 0);
  EXPECT_NE(cones[2][static_cast<std::size_t>(t)], 0);
  // The unrelated AND half never enters the fault cone.
  for (const auto& frame : cones) {
    EXPECT_EQ(frame[static_cast<std::size_t>(n.output("y"))], 0);
  }
}

TEST(CnfChain, ConeRestrictionSkipsOutOfConeLogicAndPreservesBehaviour) {
  // A chain restricted to output "t"'s cone must answer reachability
  // questions about "t" identically to the full encoding while never
  // allocating variables for the unrelated AND half.
  const Netlist n = make_two_cone_netlist();
  const auto cone = n.cone_of_influence({n.output("t")});

  auto toggle_reachable = [&](const std::vector<char>* restrict_cone,
                              int& variables) {
    sat::Solver solver;
    rtl::CnfEncoder encoder{n, solver};
    rtl::CnfEncoder::ChainOptions chain;
    chain.cone = restrict_cone;
    encoder.begin_chain(chain);
    const sat::Lit t1 = encoder.frame(1).lit(n.output("t"));
    const bool can_be_high = solver.solve({t1}) == sat::Result::sat;
    const bool can_be_low = solver.solve({~t1}) == sat::Result::sat;
    variables = solver.variable_count();
    EXPECT_TRUE(can_be_high);  // en=1 toggles 0 -> 1
    EXPECT_TRUE(can_be_low);   // en=0 holds 0
    return std::make_pair(can_be_high, can_be_low);
  };

  int full_vars = 0;
  int cone_vars = 0;
  const auto full = toggle_reachable(nullptr, full_vars);
  const auto reduced = toggle_reachable(&cone, cone_vars);
  EXPECT_EQ(full, reduced);
  EXPECT_LT(cone_vars, full_vars);

  // Out-of-cone nets carry invalid literals — they were never encoded.
  sat::Solver solver;
  rtl::CnfEncoder encoder{n, solver};
  rtl::CnfEncoder::ChainOptions chain;
  chain.cone = &cone;
  encoder.begin_chain(chain);
  EXPECT_FALSE(encoder.frame(0).lit(n.output("y")).valid());
  EXPECT_TRUE(encoder.frame(0).lit(n.output("t")).valid());
}

TEST(Cnf, ReuseBaseWithoutConeThrows) {
  const Netlist n = make_two_cone_netlist();
  sat::Solver solver;
  rtl::CnfEncoder encoder{n, solver};
  const rtl::Frame base = encoder.encode({});
  rtl::CnfEncoder::Options opts;
  opts.reuse_base = &base;
  EXPECT_THROW((void)encoder.encode(opts), std::invalid_argument);
}

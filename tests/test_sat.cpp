// Unit and property tests for the CDCL SAT solver (src/sat).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sat/instances.hpp"
#include "sat/solver.hpp"
// Defines the counting operator new/delete — one including TU per binary.
#include "support/alloc_counter.hpp"
#include "support/test_util.hpp"

namespace sat = symbad::sat;
using sat::Lit;
using sat::Result;
using sat::Solver;
using sat::Var;

TEST(Sat, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Result::sat);
}

TEST(Sat, SingleUnit) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(Lit::positive(a));
  ASSERT_EQ(s.solve(), Result::sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Sat, ContradictingUnitsAreUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(Lit::positive(a));
  EXPECT_FALSE(s.add_unit(Lit::negative(a)));
  EXPECT_EQ(s.solve(), Result::unsat);
}

TEST(Sat, ImplicationChainPropagates) {
  // a, a->b, b->c, ..., forces the last variable true.
  Solver s;
  constexpr int kLen = 50;
  std::vector<Var> v;
  for (int i = 0; i < kLen; ++i) v.push_back(s.new_var());
  s.add_unit(Lit::positive(v[0]));
  for (int i = 0; i + 1 < kLen; ++i) {
    s.add_binary(Lit::negative(v[static_cast<std::size_t>(i)]),
                 Lit::positive(v[static_cast<std::size_t>(i + 1)]));
  }
  ASSERT_EQ(s.solve(), Result::sat);
  for (int i = 0; i < kLen; ++i) EXPECT_TRUE(s.model_value(v[static_cast<std::size_t>(i)]));
}

TEST(Sat, TautologyIgnored) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  EXPECT_TRUE(s.add_clause({Lit::positive(a), Lit::negative(a)}));
  s.add_unit(Lit::positive(b));
  ASSERT_EQ(s.solve(), Result::sat);
}

TEST(Sat, DuplicateLiteralsCollapsed) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({Lit::positive(a), Lit::positive(a), Lit::positive(a)}));
  ASSERT_EQ(s.solve(), Result::sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Sat, PigeonholeUnsat) {
  // PHP(n+1, n): n+1 pigeons into n holes — classic UNSAT family.
  constexpr int kHoles = 4;
  constexpr int kPigeons = kHoles + 1;
  Solver s;
  std::vector<std::vector<Var>> x(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < kPigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < kHoles; ++h) {
      clause.push_back(Lit::positive(x[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    s.add_clause(clause);
  }
  for (int h = 0; h < kHoles; ++h) {
    for (int p1 = 0; p1 < kPigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < kPigeons; ++p2) {
        s.add_binary(
            Lit::negative(x[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
            Lit::negative(x[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)]));
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::unsat);
  EXPECT_GT(s.statistics().conflicts, 0u);
}

TEST(Sat, XorParityChainUnsat) {
  // x1 ^ x2 = 1, x2 ^ x3 = 1, ..., x_{n} ^ x1 = 1 with odd n is UNSAT.
  constexpr int kN = 7;
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < kN; ++i) v.push_back(s.new_var());
  auto add_xor_eq_1 = [&s](Var a, Var b) {
    // a ^ b = 1  <=>  (a | b) & (~a | ~b)
    s.add_binary(Lit::positive(a), Lit::positive(b));
    s.add_binary(Lit::negative(a), Lit::negative(b));
  };
  for (int i = 0; i < kN; ++i) {
    add_xor_eq_1(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>((i + 1) % kN)]);
  }
  EXPECT_EQ(s.solve(), Result::unsat);
}

TEST(Sat, AssumptionsAreIncremental) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(Lit::positive(a), Lit::positive(b));  // a | b

  EXPECT_EQ(s.solve({Lit::negative(a)}), Result::sat);
  EXPECT_TRUE(s.model_value(b));
  EXPECT_EQ(s.solve({Lit::negative(b)}), Result::sat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_EQ(s.solve({Lit::negative(a), Lit::negative(b)}), Result::unsat);
  // The solver is still usable afterwards.
  EXPECT_EQ(s.solve(), Result::sat);
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
  // A hard pigeonhole instance with a tiny budget must give up.
  constexpr int kHoles = 8;
  constexpr int kPigeons = kHoles + 1;
  Solver s;
  std::vector<std::vector<Var>> x(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < kPigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < kHoles; ++h) {
      clause.push_back(Lit::positive(x[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    s.add_clause(clause);
  }
  for (int h = 0; h < kHoles; ++h) {
    for (int p1 = 0; p1 < kPigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < kPigeons; ++p2) {
        s.add_binary(
            Lit::negative(x[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
            Lit::negative(x[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)]));
      }
    }
  }
  s.set_conflict_budget(10);
  EXPECT_EQ(s.solve(), Result::unknown);
}

TEST(Sat, UnknownVariableThrows) {
  Solver s;
  (void)s.new_var();
  EXPECT_THROW(s.add_unit(Lit::positive(7)), std::out_of_range);
  EXPECT_THROW((void)s.model_value(7), std::out_of_range);
}

// ------------------------------------------------- clause-DB reduction

using sat::add_pigeonhole;  // shared generator (src/sat/instances.hpp)

TEST(SatReduce, LearnedClauseCountStaysBounded) {
  Solver s;
  Solver::ReduceOptions opts;
  opts.base = 200;
  opts.increment = 100;
  s.set_reduce_options(opts);
  add_pigeonhole(s, 7);
  ASSERT_EQ(s.solve(), Result::unsat);

  const auto& stats = s.statistics();
  EXPECT_GT(stats.conflicts, 1000u);
  EXPECT_GE(stats.db_reductions, 1u);
  EXPECT_GT(stats.learned_removed, 0u);
  // The live database stays far below the total ever learned ...
  EXPECT_LT(s.learned_clause_count(), stats.learned_clauses / 2);
  // ... and within the configured ceiling (plus glue/binary clauses, which
  // reduction deliberately never touches).
  EXPECT_LT(s.learned_clause_count(),
            opts.base + stats.db_reductions * opts.increment + stats.learned_clauses / 4);
}

TEST(SatReduce, VerdictsIdenticalWithReductionOnAndOff) {
  // Random instances near the phase transition, solved twice: reduction
  // disabled vs aggressive. The verdict must agree and every SAT model must
  // genuinely satisfy its formula.
  for (unsigned seed = 1; seed <= 12; ++seed) {
    auto rng = symbad::test::rng(seed * 131u);
    const int n = 30;
    const int m = 128;
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < m; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k) {
        clause.push_back(Lit{static_cast<Var>(rng.below(static_cast<std::uint64_t>(n))),
                             (rng.next() & 1) != 0});
      }
      clauses.push_back(std::move(clause));
    }
    auto solve_with = [&](bool reduce_enabled) {
      Solver s;
      Solver::ReduceOptions opts;
      opts.enabled = reduce_enabled;
      opts.base = 20;  // aggressive: reduce constantly when enabled
      opts.increment = 10;
      s.set_reduce_options(opts);
      for (int i = 0; i < n; ++i) (void)s.new_var();
      for (const auto& clause : clauses) s.add_clause(clause);
      const Result r = s.solve();
      if (r == Result::sat) {
        for (const auto& clause : clauses) {
          bool satisfied = false;
          for (const Lit l : clause) {
            if (s.model_value(l.var()) != l.negated()) satisfied = true;
          }
          EXPECT_TRUE(satisfied) << "seed " << seed;
        }
      }
      return r;
    };
    EXPECT_EQ(solve_with(false), solve_with(true)) << "seed " << seed;
  }
}

TEST(SatReduce, DeletionWindowHasNoStaleReferences) {
  // ASan regression for reduce_db's deletion window: learned clauses are
  // freed while watch lists and reason slots hold references to clause
  // storage, and any stale entry surviving the eager detach/remap would be
  // dereferenced by the very next propagate. Reductions are forced as
  // often as possible (base=1, increment=0-ish) *between* conflicting
  // incremental solves, the access pattern where a stale reference has the
  // longest life: solve -> reduce -> solve must re-walk the watch lists
  // rebuilt by the previous round. Run under CI's ASan and UBSan builds
  // (scripts/ci.sh steps 4/5), a silent use-after-free here becomes loud.
  Solver s;
  Solver::ReduceOptions opts;
  opts.base = 1;
  opts.increment = 1;
  opts.keep_lbd = 0;  // as aggressive as the policy allows
  s.set_reduce_options(opts);
  const Var g1 = s.new_var();
  const Var g2 = s.new_var();
  add_pigeonhole(s, 5, Lit::positive(g1));
  add_pigeonhole(s, 6, Lit::positive(g2));
  for (int round = 0; round < 8; ++round) {
    switch (round % 4) {
      case 0:
        EXPECT_EQ(s.solve({Lit::negative(g1)}), Result::unsat) << round;
        break;
      case 1:
        ASSERT_EQ(s.solve({Lit::negative(g2), Lit::positive(g1)}), Result::unsat)
            << round;
        break;
      case 2:
        ASSERT_EQ(s.solve(), Result::sat) << round;
        EXPECT_TRUE(s.model_value(g1));
        EXPECT_TRUE(s.model_value(g2));
        break;
      default:
        // Add fresh clauses between solves so attach interleaves with the
        // torn-down DB, then query again.
        const Var extra = s.new_var();
        EXPECT_TRUE(s.add_ternary(Lit::positive(extra), Lit::positive(g1),
                                  Lit::positive(g2)));
        EXPECT_EQ(s.solve({Lit::negative(extra), Lit::negative(g1)}), Result::unsat)
            << round;
        break;
    }
  }
  EXPECT_GE(s.statistics().db_reductions, 2u);
  EXPECT_GT(s.statistics().learned_removed, 0u);
}

TEST(SatReduce, IncrementalSolvesStayCorrectUnderAggressiveReduction) {
  // A gated contradiction queried with rotating assumptions while the
  // reduction ceiling is as tight as it goes: every query must keep its
  // verdict even though the learned DB is being torn down continuously
  // between solves (binary and glue <= keep_lbd learned clauses are exempt
  // from deletion by design — deleting them would break the asserting-
  // reason invariants this sweep leans on).
  Solver s;
  Solver::ReduceOptions opts;
  opts.base = 1;
  opts.increment = 1;
  opts.keep_lbd = 2;
  s.set_reduce_options(opts);
  const Var g = s.new_var();
  add_pigeonhole(s, 6, Lit::positive(g));
  for (int round = 0; round < 6; ++round) {
    if (round % 2 == 0) {
      EXPECT_EQ(s.solve({Lit::negative(g)}), Result::unsat) << "round " << round;
    } else {
      ASSERT_EQ(s.solve(), Result::sat) << "round " << round;
      EXPECT_TRUE(s.model_value(g));
    }
  }
  EXPECT_GE(s.statistics().db_reductions, 1u);
  EXPECT_GT(s.statistics().learned_removed, 0u);
}

// ---------------------------------------------- incremental statistics

TEST(SatStats, PerSolveDeltasSumToCumulativeTotals) {
  // A pigeonhole contradiction gated behind `g`: UNSAT while assuming ~g,
  // SAT otherwise — the solver stays reusable across the whole sweep.
  Solver s;
  const Var g = s.new_var();
  add_pigeonhole(s, 5, Lit::positive(g));

  const auto base = s.statistics();  // add_clause-time propagations excluded
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t first_unsat_conflicts = 0;
  const Lit contradiction_on = Lit::negative(g);
  for (int round = 0; round < 4; ++round) {
    const Result expected = round % 2 == 0 ? Result::unsat : Result::sat;
    const Result r = round % 2 == 0 ? s.solve({contradiction_on}) : s.solve();
    EXPECT_EQ(r, expected) << "round " << round;
    const auto& delta = s.last_solve_statistics();
    if (round == 0) first_unsat_conflicts = delta.conflicts;
    conflicts += delta.conflicts;
    decisions += delta.decisions;
    propagations += delta.propagations;
  }
  EXPECT_EQ(conflicts, s.statistics().conflicts - base.conflicts);
  EXPECT_EQ(decisions, s.statistics().decisions - base.decisions);
  EXPECT_EQ(propagations, s.statistics().propagations - base.propagations);
  EXPECT_GT(first_unsat_conflicts, 0u);
  // Incremental reuse: refuting the same core the second time rides on the
  // learned clauses from the first refutation.
  EXPECT_LT(s.last_solve_statistics().conflicts, first_unsat_conflicts);
}

TEST(SatStats, RootConflictLatchesUnsatForever) {
  // Once a conflict is derived at decision level 0 the formula itself is
  // contradictory; every later incremental solve must stay unsat (this
  // regression guards the `ok` latch — without it a follow-up solve could
  // fabricate a model over the contradictory formula).
  Solver s;
  add_pigeonhole(s, 4);
  const Var free_var = s.new_var();
  EXPECT_EQ(s.solve(), Result::unsat);
  EXPECT_EQ(s.solve(), Result::unsat);
  EXPECT_EQ(s.solve({Lit::positive(free_var)}), Result::unsat);
  EXPECT_EQ(s.solve({Lit::negative(free_var)}), Result::unsat);
}

TEST(SatStats, RootValueReflectsRootAssignments) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_unit(Lit::positive(a));
  s.add_binary(Lit::negative(a), Lit::negative(b));  // a -> !b
  EXPECT_EQ(s.root_value(a), symbad::sat::Value::true_value);
  EXPECT_EQ(s.root_value(b), symbad::sat::Value::false_value);
  EXPECT_EQ(s.root_value(c), symbad::sat::Value::undef);
  EXPECT_THROW((void)s.root_value(99), std::out_of_range);
}

// ----------------------------------------------------------- properties

/// Random 3-SAT with a planted solution must be found satisfiable, and the
/// returned model must satisfy every clause.
class SatPlanted : public ::testing::TestWithParam<unsigned> {};

TEST_P(SatPlanted, PlantedInstanceSolvedAndModelValid) {
  auto rng = symbad::test::rng(GetParam());
  const int n = 40;
  const int m = 160;

  Solver s;
  std::vector<Var> vars;
  std::vector<bool> planted;
  for (int i = 0; i < n; ++i) {
    vars.push_back(s.new_var());
    planted.push_back((rng.next() & 1) != 0);
  }
  std::vector<std::vector<Lit>> clauses;
  for (int c = 0; c < m; ++c) {
    std::vector<Lit> clause;
    bool satisfied_by_planted = false;
    for (int k = 0; k < 3; ++k) {
      const int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      const bool neg = (rng.next() & 1) != 0;
      clause.push_back(Lit{vars[static_cast<std::size_t>(v)], neg});
      if (planted[static_cast<std::size_t>(v)] != neg) satisfied_by_planted = true;
    }
    if (!satisfied_by_planted) {
      // Flip one literal's polarity so the planted assignment satisfies it.
      const auto v = clause[0].var();
      clause[0] = Lit{v, !planted[static_cast<std::size_t>(v)]};
    }
    s.add_clause(clause);
    clauses.push_back(std::move(clause));
  }

  ASSERT_EQ(s.solve(), Result::sat);
  for (const auto& clause : clauses) {
    bool satisfied = false;
    for (const Lit l : clause) {
      if (s.model_value(l.var()) != l.negated()) satisfied = true;
    }
    EXPECT_TRUE(satisfied);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatPlanted, ::testing::Range(1u, 33u));

/// Random instances near the phase transition: whatever the answer, a SAT
/// answer must come with a genuinely satisfying model (UNSAT answers are
/// trusted to the engine's soundness, which the planted suite exercises).
class SatRandomHard : public ::testing::TestWithParam<unsigned> {};

TEST_P(SatRandomHard, ModelsAreAlwaysValid) {
  auto rng = symbad::test::rng(GetParam() * 977u);
  const int n = 30;
  const int m = 128;  // ratio ~4.26: phase transition

  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
  std::vector<std::vector<Lit>> clauses;
  for (int c = 0; c < m; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(Lit{vars[rng.below(static_cast<std::uint64_t>(n))],
                           (rng.next() & 1) != 0});
    }
    s.add_clause(clause);
    clauses.push_back(std::move(clause));
  }
  const Result r = s.solve();
  if (r == Result::sat) {
    for (const auto& clause : clauses) {
      bool satisfied = false;
      for (const Lit l : clause) {
        if (s.model_value(l.var()) != l.negated()) satisfied = true;
      }
      EXPECT_TRUE(satisfied);
    }
  } else {
    EXPECT_EQ(r, Result::unsat);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomHard, ::testing::Range(1u, 17u));

// ------------------------------------------------------- clause arena

namespace {

/// Everything observable about a fixed incremental workload: verdicts,
/// full models, per-solve conflict deltas, cumulative statistics, arena
/// footprint. Two runs that differ only in CompactMode must produce
/// identical records (up to the arena fields themselves).
struct ArenaRunRecord {
  std::vector<Result> verdicts;
  std::vector<std::vector<bool>> models;
  std::vector<std::uint64_t> per_solve_conflicts;
  Solver::Statistics final_stats;
  std::size_t arena_bytes = 0;
  std::size_t arena_live = 0;
};

/// Incremental workload with constant DB churn: two gated pigeonholes
/// queried under rotating assumptions with reduction forced every conflict,
/// then randomized 3-SAT blocks (below the phase transition, so the formula
/// stays satisfiable and the solver keeps learning) interleaved with more
/// assumption queries.
ArenaRunRecord run_arena_workload(sat::CompactMode mode) {
  ArenaRunRecord rec;
  Solver s;
  Solver::ReduceOptions opts;
  opts.base = 1;
  opts.increment = 1;
  opts.keep_lbd = 0;
  opts.compact = mode;
  s.set_reduce_options(opts);
  const Var g1 = s.new_var();
  const Var g2 = s.new_var();
  add_pigeonhole(s, 5, Lit::positive(g1));
  add_pigeonhole(s, 6, Lit::positive(g2));
  const auto record = [&](Result r) {
    rec.verdicts.push_back(r);
    rec.per_solve_conflicts.push_back(s.last_solve_statistics().conflicts);
    std::vector<bool> model;
    if (r == Result::sat) {
      for (Var v = 0; v < s.variable_count(); ++v) model.push_back(s.model_value(v));
    }
    rec.models.push_back(std::move(model));
  };
  for (int round = 0; round < 9; ++round) {
    switch (round % 3) {
      case 0: record(s.solve({Lit::negative(g1)})); break;
      case 1: record(s.solve({Lit::negative(g2), Lit::positive(g1)})); break;
      default: record(s.solve()); break;
    }
  }
  auto rng = symbad::test::rng(4242u);
  for (int block = 0; block < 4; ++block) {
    std::vector<Var> fresh;
    for (int i = 0; i < 20; ++i) fresh.push_back(s.new_var());
    for (int c = 0; c < 60; ++c) {  // ratio 3: satisfiable but conflict-rich
      std::array<Lit, 3> clause{};
      for (auto& l : clause) {
        l = Lit{fresh[rng.below(20)], (rng.next() & 1) != 0};
      }
      s.add_clause(clause);
    }
    record(s.solve());
    record(s.solve({Lit::negative(g1)}));
  }
  rec.final_stats = s.statistics();
  rec.arena_bytes = s.arena_bytes();
  rec.arena_live = s.arena_live_bytes();
  return rec;
}

/// Compares two workload records field by field, excluding only the arena
/// compaction counter (which is the one thing allowed to differ).
void expect_identical_runs(const ArenaRunRecord& a, const ArenaRunRecord& b) {
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.models, b.models);
  EXPECT_EQ(a.per_solve_conflicts, b.per_solve_conflicts);
  EXPECT_EQ(a.final_stats.decisions, b.final_stats.decisions);
  EXPECT_EQ(a.final_stats.propagations, b.final_stats.propagations);
  EXPECT_EQ(a.final_stats.conflicts, b.final_stats.conflicts);
  EXPECT_EQ(a.final_stats.restarts, b.final_stats.restarts);
  EXPECT_EQ(a.final_stats.learned_clauses, b.final_stats.learned_clauses);
  EXPECT_EQ(a.final_stats.db_reductions, b.final_stats.db_reductions);
  EXPECT_EQ(a.final_stats.learned_removed, b.final_stats.learned_removed);
  // Live bytes are a function of the live clause set alone, so they must
  // agree even though total arena bytes may not.
  EXPECT_EQ(a.arena_live, b.arena_live);
}

/// Save/restore guard for one environment variable.
struct CompactEnvGuard {
  CompactEnvGuard() {
    if (const char* v = std::getenv(kName)) saved_ = v;
  }
  ~CompactEnvGuard() {
    if (saved_) {
      ::setenv(kName, saved_->c_str(), 1);
    } else {
      ::unsetenv(kName);
    }
  }
  static constexpr const char* kName = "SYMBAD_SAT_COMPACT";
  std::optional<std::string> saved_;
};

}  // namespace

TEST(SatArena, CompactionForcedVsNeverIsBitIdentical) {
  // Compaction is pure memory management: forcing it on every reduction
  // pass must leave verdicts, models, per-solve conflict deltas and every
  // cumulative statistic bit-identical to never compacting at all. The
  // automatic mode sits between the two and must match as well.
  const auto never = run_arena_workload(sat::CompactMode::never);
  const auto always = run_arena_workload(sat::CompactMode::always);
  const auto automatic = run_arena_workload(sat::CompactMode::automatic);

  ASSERT_GT(never.final_stats.learned_removed, 0u);  // the workload churns
  EXPECT_EQ(never.final_stats.arena_compactions, 0u);
  EXPECT_GT(always.final_stats.arena_compactions, 0u);

  expect_identical_runs(never, always);
  expect_identical_runs(never, automatic);

  // Compacting can only shrink the arena, never grow it.
  EXPECT_LE(always.arena_bytes, never.arena_bytes);
  EXPECT_EQ(always.arena_bytes, always.arena_live);
}

TEST(SatArena, SteadyStateIncrementalSolvingDoesNotAllocate) {
  // The arena contract, pinned exactly: once a warm incremental solver has
  // grown every structure to its high-water capacity, further solve rounds
  // — including learned-DB reductions and forced compactions — touch the
  // allocator zero times. Clause storage is bump allocation in the arena,
  // compaction swaps two retained buffers, conflict analysis / reduction
  // use pooled scratch, and reduction sorts without stable_sort's
  // temporary buffer.
  Solver s;
  Solver::ReduceOptions opts;
  opts.base = 30;
  opts.increment = 0;
  opts.keep_lbd = 0;
  opts.compact = sat::CompactMode::always;
  s.set_reduce_options(opts);
  const Var g = s.new_var();
  add_pigeonhole(s, 5, Lit::positive(g));
  for (int round = 0; round < 12; ++round) {  // warm-up: reach capacity
    (void)(round % 2 == 0 ? s.solve({Lit::negative(g)}) : s.solve());
  }
  ASSERT_GT(s.statistics().db_reductions, 0u);
  ASSERT_GT(s.statistics().arena_compactions, 0u);

  std::array<Result, 8> results{};
  symbad::test_support::arm_allocation_counter();
  for (int round = 0; round < 8; ++round) {
    results[static_cast<std::size_t>(round)] =
        round % 2 == 0 ? s.solve({Lit::negative(g)}) : s.solve();
  }
  const auto allocations = symbad::test_support::disarm_allocation_counter();

  EXPECT_EQ(allocations, 0u);
  for (int round = 0; round < 8; ++round) {
    EXPECT_EQ(results[static_cast<std::size_t>(round)],
              round % 2 == 0 ? Result::unsat : Result::sat)
        << "round " << round;
  }
}

TEST(SatArena, AddClauseStaysOffTheAllocatorOnceWarm) {
  // Per-clause heap allocation is gone: adding thousands of clauses to a
  // warm solver costs only the amortised growth of the arena, the watch
  // lists and the clause-ref vector — a handful of vector doublings, not
  // one allocation per clause.
  Solver s;
  constexpr int kVars = 16;
  std::array<Var, kVars> vars{};
  for (auto& v : vars) v = s.new_var();
  const auto add_batch = [&](int offset, int count) {
    for (int i = offset; i < offset + count; ++i) {
      const Lit a{vars[static_cast<std::size_t>(i % kVars)], (i & 1) != 0};
      const Lit b{vars[static_cast<std::size_t>((i * 5 + 1) % kVars)], (i & 2) != 0};
      const Lit c{vars[static_cast<std::size_t>((i * 7 + 3) % kVars)], (i & 4) != 0};
      (void)s.add_ternary(a, b, c);
    }
  };
  constexpr int kBatch = 2000;
  add_batch(0, kBatch);  // warm-up: arena and watch lists grow
  const std::size_t warm_clauses = s.problem_clause_count();

  symbad::test_support::arm_allocation_counter();
  add_batch(kBatch, kBatch);
  const auto allocations = symbad::test_support::disarm_allocation_counter();

  EXPECT_GT(s.problem_clause_count(), warm_clauses + kBatch / 2);
  EXPECT_LT(allocations, 64u) << "for " << kBatch << " clauses";
}

TEST(SatArena, CompactEnvKnobIsStrictAndSelectsTheMode) {
  const CompactEnvGuard guard;
  for (const char* bad : {"abc", "3", "-1", " 1", "1x", ""}) {
    ::setenv(CompactEnvGuard::kName, bad, 1);
    EXPECT_THROW((void)Solver{}, std::invalid_argument) << '"' << bad << '"';
  }
  // 2 = always, 0 = never, resolved through ReduceOptions::env_default —
  // and the choice must not leak into solver behaviour.
  ::setenv(CompactEnvGuard::kName, "2", 1);
  const auto forced = run_arena_workload(sat::CompactMode::env_default);
  ::setenv(CompactEnvGuard::kName, "0", 1);
  const auto never = run_arena_workload(sat::CompactMode::env_default);
  EXPECT_GT(forced.final_stats.arena_compactions, 0u);
  EXPECT_EQ(never.final_stats.arena_compactions, 0u);
  expect_identical_runs(never, forced);
}

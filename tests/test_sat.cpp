// Unit and property tests for the CDCL SAT solver (src/sat).

#include <gtest/gtest.h>

#include <vector>

#include "sat/solver.hpp"
#include "support/test_util.hpp"

namespace sat = symbad::sat;
using sat::Lit;
using sat::Result;
using sat::Solver;
using sat::Var;

TEST(Sat, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Result::sat);
}

TEST(Sat, SingleUnit) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(Lit::positive(a));
  ASSERT_EQ(s.solve(), Result::sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Sat, ContradictingUnitsAreUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(Lit::positive(a));
  EXPECT_FALSE(s.add_unit(Lit::negative(a)));
  EXPECT_EQ(s.solve(), Result::unsat);
}

TEST(Sat, ImplicationChainPropagates) {
  // a, a->b, b->c, ..., forces the last variable true.
  Solver s;
  constexpr int kLen = 50;
  std::vector<Var> v;
  for (int i = 0; i < kLen; ++i) v.push_back(s.new_var());
  s.add_unit(Lit::positive(v[0]));
  for (int i = 0; i + 1 < kLen; ++i) {
    s.add_binary(Lit::negative(v[static_cast<std::size_t>(i)]),
                 Lit::positive(v[static_cast<std::size_t>(i + 1)]));
  }
  ASSERT_EQ(s.solve(), Result::sat);
  for (int i = 0; i < kLen; ++i) EXPECT_TRUE(s.model_value(v[static_cast<std::size_t>(i)]));
}

TEST(Sat, TautologyIgnored) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  EXPECT_TRUE(s.add_clause({Lit::positive(a), Lit::negative(a)}));
  s.add_unit(Lit::positive(b));
  ASSERT_EQ(s.solve(), Result::sat);
}

TEST(Sat, DuplicateLiteralsCollapsed) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({Lit::positive(a), Lit::positive(a), Lit::positive(a)}));
  ASSERT_EQ(s.solve(), Result::sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Sat, PigeonholeUnsat) {
  // PHP(n+1, n): n+1 pigeons into n holes — classic UNSAT family.
  constexpr int kHoles = 4;
  constexpr int kPigeons = kHoles + 1;
  Solver s;
  std::vector<std::vector<Var>> x(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < kPigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < kHoles; ++h) {
      clause.push_back(Lit::positive(x[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    s.add_clause(clause);
  }
  for (int h = 0; h < kHoles; ++h) {
    for (int p1 = 0; p1 < kPigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < kPigeons; ++p2) {
        s.add_binary(
            Lit::negative(x[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
            Lit::negative(x[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)]));
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::unsat);
  EXPECT_GT(s.statistics().conflicts, 0u);
}

TEST(Sat, XorParityChainUnsat) {
  // x1 ^ x2 = 1, x2 ^ x3 = 1, ..., x_{n} ^ x1 = 1 with odd n is UNSAT.
  constexpr int kN = 7;
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < kN; ++i) v.push_back(s.new_var());
  auto add_xor_eq_1 = [&s](Var a, Var b) {
    // a ^ b = 1  <=>  (a | b) & (~a | ~b)
    s.add_binary(Lit::positive(a), Lit::positive(b));
    s.add_binary(Lit::negative(a), Lit::negative(b));
  };
  for (int i = 0; i < kN; ++i) {
    add_xor_eq_1(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>((i + 1) % kN)]);
  }
  EXPECT_EQ(s.solve(), Result::unsat);
}

TEST(Sat, AssumptionsAreIncremental) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(Lit::positive(a), Lit::positive(b));  // a | b

  EXPECT_EQ(s.solve({Lit::negative(a)}), Result::sat);
  EXPECT_TRUE(s.model_value(b));
  EXPECT_EQ(s.solve({Lit::negative(b)}), Result::sat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_EQ(s.solve({Lit::negative(a), Lit::negative(b)}), Result::unsat);
  // The solver is still usable afterwards.
  EXPECT_EQ(s.solve(), Result::sat);
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
  // A hard pigeonhole instance with a tiny budget must give up.
  constexpr int kHoles = 8;
  constexpr int kPigeons = kHoles + 1;
  Solver s;
  std::vector<std::vector<Var>> x(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < kPigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < kHoles; ++h) {
      clause.push_back(Lit::positive(x[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    }
    s.add_clause(clause);
  }
  for (int h = 0; h < kHoles; ++h) {
    for (int p1 = 0; p1 < kPigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < kPigeons; ++p2) {
        s.add_binary(
            Lit::negative(x[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
            Lit::negative(x[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)]));
      }
    }
  }
  s.set_conflict_budget(10);
  EXPECT_EQ(s.solve(), Result::unknown);
}

TEST(Sat, UnknownVariableThrows) {
  Solver s;
  (void)s.new_var();
  EXPECT_THROW(s.add_unit(Lit::positive(7)), std::out_of_range);
  EXPECT_THROW((void)s.model_value(7), std::out_of_range);
}

// ----------------------------------------------------------- properties

/// Random 3-SAT with a planted solution must be found satisfiable, and the
/// returned model must satisfy every clause.
class SatPlanted : public ::testing::TestWithParam<unsigned> {};

TEST_P(SatPlanted, PlantedInstanceSolvedAndModelValid) {
  auto rng = symbad::test::rng(GetParam());
  const int n = 40;
  const int m = 160;

  Solver s;
  std::vector<Var> vars;
  std::vector<bool> planted;
  for (int i = 0; i < n; ++i) {
    vars.push_back(s.new_var());
    planted.push_back((rng.next() & 1) != 0);
  }
  std::vector<std::vector<Lit>> clauses;
  for (int c = 0; c < m; ++c) {
    std::vector<Lit> clause;
    bool satisfied_by_planted = false;
    for (int k = 0; k < 3; ++k) {
      const int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      const bool neg = (rng.next() & 1) != 0;
      clause.push_back(Lit{vars[static_cast<std::size_t>(v)], neg});
      if (planted[static_cast<std::size_t>(v)] != neg) satisfied_by_planted = true;
    }
    if (!satisfied_by_planted) {
      // Flip one literal's polarity so the planted assignment satisfies it.
      const auto v = clause[0].var();
      clause[0] = Lit{v, !planted[static_cast<std::size_t>(v)]};
    }
    s.add_clause(clause);
    clauses.push_back(std::move(clause));
  }

  ASSERT_EQ(s.solve(), Result::sat);
  for (const auto& clause : clauses) {
    bool satisfied = false;
    for (const Lit l : clause) {
      if (s.model_value(l.var()) != l.negated()) satisfied = true;
    }
    EXPECT_TRUE(satisfied);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatPlanted, ::testing::Range(1u, 33u));

/// Random instances near the phase transition: whatever the answer, a SAT
/// answer must come with a genuinely satisfying model (UNSAT answers are
/// trusted to the engine's soundness, which the planted suite exercises).
class SatRandomHard : public ::testing::TestWithParam<unsigned> {};

TEST_P(SatRandomHard, ModelsAreAlwaysValid) {
  auto rng = symbad::test::rng(GetParam() * 977u);
  const int n = 30;
  const int m = 128;  // ratio ~4.26: phase transition

  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
  std::vector<std::vector<Lit>> clauses;
  for (int c = 0; c < m; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(Lit{vars[rng.below(static_cast<std::uint64_t>(n))],
                           (rng.next() & 1) != 0});
    }
    s.add_clause(clause);
    clauses.push_back(std::move(clause));
  }
  const Result r = s.solve();
  if (r == Result::sat) {
    for (const auto& clause : clauses) {
      bool satisfied = false;
      for (const Lit l : clause) {
        if (s.model_value(l.var()) != l.negated()) satisfied = true;
      }
      EXPECT_TRUE(satisfied);
    }
  } else {
    EXPECT_EQ(r, Result::unsat);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomHard, ::testing::Range(1u, 17u));

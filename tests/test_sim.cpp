// Unit tests for the discrete-event simulation kernel (src/sim).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/channels.hpp"
#include "sim/kernel.hpp"
#include "sim/module.hpp"
#include "sim/trace.hpp"
#include "support/alloc_counter.hpp"
#include "support/test_util.hpp"

namespace sim = symbad::sim;
using sim::Time;

// ------------------------------------------------------------------ Time

TEST(Time, UnitConstructorsAgree) {
  EXPECT_EQ(Time::ns(1), Time::ps(1000));
  EXPECT_EQ(Time::us(1), Time::ns(1000));
  EXPECT_EQ(Time::ms(1), Time::us(1000));
  EXPECT_EQ(Time::sec(1), Time::ms(1000));
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(Time::ns(3) + Time::ns(4), Time::ns(7));
  EXPECT_EQ(Time::ns(10) - Time::ns(4), Time::ns(6));
  EXPECT_EQ(Time::ns(3) * 4, Time::ns(12));
  EXPECT_EQ(4 * Time::ns(3), Time::ns(12));
  EXPECT_EQ(Time::ns(100) / Time::ns(10), 10);
}

TEST(Time, PeriodOfHz) {
  EXPECT_EQ(Time::period_of_hz(50e6), Time::ns(20));
  EXPECT_EQ(Time::period_of_hz(1e9), Time::ns(1));
  EXPECT_THROW(Time::period_of_hz(0.0), std::invalid_argument);
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::ns(1), Time::ns(2));
  EXPECT_GT(Time::us(1), Time::ns(999));
  EXPECT_TRUE(Time::zero().is_zero());
}

TEST(Time, DivisionByZeroThrows) {
  EXPECT_THROW((void)(Time::ns(5) / Time::zero()), std::domain_error);
}

TEST(Time, ToStringPicksUnit) {
  EXPECT_EQ(Time::ps(5).to_string(), "5 ps");
  EXPECT_NE(Time::us(3).to_string().find("us"), std::string::npos);
  EXPECT_NE(Time::sec(2).to_string().find(" s"), std::string::npos);
}

// ---------------------------------------------------------------- Kernel

TEST(Kernel, RunsScheduledCallbacksInTimeOrder) {
  sim::Kernel kernel;
  std::vector<int> order;
  kernel.schedule(Time::ns(20), [&] { order.push_back(2); });
  kernel.schedule(Time::ns(10), [&] { order.push_back(1); });
  kernel.schedule(Time::ns(30), [&] { order.push_back(3); });
  EXPECT_EQ(kernel.run(), sim::RunResult::no_more_events);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(kernel.now(), Time::ns(30));
}

TEST(Kernel, SameTimeCallbacksRunInInsertionOrder) {
  sim::Kernel kernel;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    kernel.schedule(Time::ns(10), [&order, i] { order.push_back(i); });
  }
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Kernel, NegativeDelayThrows) {
  sim::Kernel kernel;
  EXPECT_THROW(kernel.schedule(Time::ns(-1), [] {}), std::invalid_argument);
}

TEST(Kernel, TimeLimitStopsRun) {
  sim::Kernel kernel;
  int hits = 0;
  kernel.schedule(Time::ns(10), [&] { ++hits; });
  kernel.schedule(Time::us(10), [&] { ++hits; });
  EXPECT_EQ(kernel.run(Time::ns(100)), sim::RunResult::time_limit);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(kernel.now(), Time::ns(100));
  // Resuming past the limit executes the remainder.
  EXPECT_EQ(kernel.run(), sim::RunResult::no_more_events);
  EXPECT_EQ(hits, 2);
}

TEST(Kernel, StopRequestHonoured) {
  sim::Kernel kernel;
  int hits = 0;
  kernel.schedule(Time::ns(1), [&] {
    ++hits;
    kernel.stop();
  });
  kernel.schedule(Time::ns(2), [&] { ++hits; });
  EXPECT_EQ(kernel.run(), sim::RunResult::stopped);
  EXPECT_EQ(hits, 1);
}

namespace {

sim::Process simple_waiter(sim::Kernel& kernel, std::vector<Time>& log) {
  log.push_back(kernel.now());
  co_await kernel.wait(Time::ns(10));
  log.push_back(kernel.now());
  co_await kernel.wait(Time::ns(5));
  log.push_back(kernel.now());
}

}  // namespace

TEST(Kernel, ProcessWaitsAdvanceTime) {
  sim::Kernel kernel;
  std::vector<Time> log;
  kernel.spawn(simple_waiter(kernel, log));
  EXPECT_EQ(kernel.live_processes(), 1u);
  kernel.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], Time::zero());
  EXPECT_EQ(log[1], Time::ns(10));
  EXPECT_EQ(log[2], Time::ns(15));
  EXPECT_EQ(kernel.live_processes(), 0u);
}

namespace {

sim::Process thrower(sim::Kernel& kernel) {
  co_await kernel.wait(Time::ns(1));
  throw std::runtime_error{"boom"};
}

}  // namespace

TEST(Kernel, ProcessExceptionPropagatesFromRun) {
  sim::Kernel kernel;
  kernel.spawn(thrower(kernel));
  EXPECT_THROW(kernel.run(), std::runtime_error);
}

TEST(Kernel, AbandonedProcessDoesNotLeak) {
  // A process suspended forever must be reclaimed by the kernel destructor
  // (checked by LeakSanitizer builds; here we just exercise the path).
  sim::Kernel kernel;
  auto forever = [](sim::Kernel& k) -> sim::Process {
    sim::Event never{k, "never"};
    co_await never;  // dangling-event caveat is fine: kernel dies first
  };
  (void)forever;
  sim::Event* never = new sim::Event{kernel, "never"};
  auto waiting = [](sim::Event& e) -> sim::Process { co_await e; };
  kernel.spawn(waiting(*never));
  kernel.run();
  EXPECT_EQ(kernel.live_processes(), 1u);
  // kernel destructor reclaims the frame; then the event can be freed.
  // (Order matters: the frame's awaiter references the event only until
  // destroyed.)
  delete never;
}

// ----------------------------------------------------------------- Event

namespace {

sim::Process wait_event_once(sim::Event& event, sim::Kernel& kernel, std::vector<Time>& log) {
  co_await event;
  log.push_back(kernel.now());
}

}  // namespace

TEST(Event, DeltaNotifyWakesAllWaiters) {
  sim::Kernel kernel;
  sim::Event event{kernel, "e"};
  std::vector<Time> log;
  kernel.spawn(wait_event_once(event, kernel, log));
  kernel.spawn(wait_event_once(event, kernel, log));
  kernel.schedule(Time::ns(7), [&] { event.notify(); });
  kernel.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], Time::ns(7));
  EXPECT_EQ(log[1], Time::ns(7));
}

TEST(Event, TimedNotifyFiresAtRightTime) {
  sim::Kernel kernel;
  sim::Event event{kernel, "e"};
  std::vector<Time> log;
  kernel.spawn(wait_event_once(event, kernel, log));
  kernel.schedule(Time::ns(5), [&] { event.notify(Time::ns(20)); });
  kernel.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], Time::ns(25));
}

TEST(Event, EarlierNotificationWins) {
  sim::Kernel kernel;
  sim::Event event{kernel, "e"};
  std::vector<Time> log;
  kernel.spawn(wait_event_once(event, kernel, log));
  kernel.schedule(Time::ns(1), [&] {
    event.notify(Time::ns(50));
    event.notify(Time::ns(10));  // earlier: wins
    event.notify(Time::ns(90));  // later: ignored
  });
  kernel.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], Time::ns(11));
}

TEST(Event, CancelDiscardsPendingNotification) {
  sim::Kernel kernel;
  sim::Event event{kernel, "e"};
  std::vector<Time> log;
  kernel.spawn(wait_event_once(event, kernel, log));
  kernel.schedule(Time::ns(1), [&] { event.notify(Time::ns(10)); });
  kernel.schedule(Time::ns(2), [&] { event.cancel(); });
  kernel.run();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(event.waiter_count(), 1u);
}

TEST(Event, NegativeNotifyThrows) {
  sim::Kernel kernel;
  sim::Event event{kernel, "e"};
  EXPECT_THROW(event.notify(Time::ns(-3)), std::invalid_argument);
}

// ------------------------------------------------------------------ Fifo

namespace {

sim::Process producer(sim::Kernel& kernel, sim::Fifo<int>& fifo, int count, Time gap) {
  for (int i = 0; i < count; ++i) {
    co_await fifo.write(i);
    if (!gap.is_zero()) co_await kernel.wait(gap);
  }
}

sim::Process consumer(sim::Kernel& kernel, sim::Fifo<int>& fifo, int count, Time gap,
                      std::vector<int>& out) {
  for (int i = 0; i < count; ++i) {
    int v = co_await fifo.read();
    out.push_back(v);
    if (!gap.is_zero()) co_await kernel.wait(gap);
  }
}

}  // namespace

TEST(Fifo, TransfersAllItemsInOrder) {
  sim::Kernel kernel;
  sim::Fifo<int> fifo{kernel, "f", 4};
  std::vector<int> received;
  kernel.spawn(producer(kernel, fifo, 100, Time::zero()));
  kernel.spawn(consumer(kernel, fifo, 100, Time::zero(), received));
  kernel.run();
  ASSERT_EQ(received.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(fifo.total_written(), 100u);
}

TEST(Fifo, BackpressureBlocksFastProducer) {
  sim::Kernel kernel;
  sim::Fifo<int> fifo{kernel, "f", 2};
  std::vector<int> received;
  // Producer writes as fast as possible; consumer drains one item per 10 ns.
  kernel.spawn(producer(kernel, fifo, 10, Time::zero()));
  kernel.spawn(consumer(kernel, fifo, 10, Time::ns(10), received));
  kernel.run();
  EXPECT_EQ(received.size(), 10u);
  EXPECT_LE(fifo.peak_size(), 2u);
  // Consumer paced the transfer: ~10ns per item.
  EXPECT_GE(kernel.now(), Time::ns(90));
}

TEST(Fifo, SlowProducerBlocksConsumer) {
  sim::Kernel kernel;
  sim::Fifo<int> fifo{kernel, "f", 8};
  std::vector<int> received;
  kernel.spawn(producer(kernel, fifo, 5, Time::ns(100)));
  kernel.spawn(consumer(kernel, fifo, 5, Time::zero(), received));
  kernel.run();
  EXPECT_EQ(received.size(), 5u);
  EXPECT_GE(kernel.now(), Time::ns(400));
  EXPECT_LE(fifo.peak_size(), 1u);
}

TEST(Fifo, NonBlockingInterface) {
  sim::Kernel kernel;
  sim::Fifo<int> fifo{kernel, "f", 2};
  int v = 0;
  EXPECT_FALSE(fifo.nb_read(v));
  EXPECT_TRUE(fifo.nb_write(1));
  EXPECT_TRUE(fifo.nb_write(2));
  EXPECT_FALSE(fifo.nb_write(3));
  EXPECT_TRUE(fifo.full());
  EXPECT_TRUE(fifo.nb_read(v));
  EXPECT_EQ(v, 1);
  EXPECT_EQ(fifo.size(), 1u);
}

TEST(Fifo, ZeroCapacityRejected) {
  sim::Kernel kernel;
  EXPECT_THROW((sim::Fifo<int>{kernel, "f", 0}), std::invalid_argument);
}

// ---------------------------------------------------------------- Signal

TEST(Signal, WriteChangesValueAndCountsEdges) {
  sim::Kernel kernel;
  sim::Signal<int> signal{kernel, "s", 0};
  signal.write(5);
  signal.write(5);  // no change: not counted
  signal.write(7);
  EXPECT_EQ(signal.read(), 7);
  EXPECT_EQ(signal.change_count(), 2u);
}

// ----------------------------------------------------------------- Mutex

namespace {

sim::Process lock_hold_unlock(sim::Kernel& kernel, sim::Mutex& mutex, Time hold,
                              std::vector<std::pair<int, Time>>& log, int id) {
  co_await mutex.lock();
  log.emplace_back(id, kernel.now());
  co_await kernel.wait(hold);
  mutex.unlock();
}

}  // namespace

TEST(Mutex, SerialisesCriticalSections) {
  sim::Kernel kernel;
  sim::Mutex mutex{kernel, "m"};
  std::vector<std::pair<int, Time>> log;
  for (int id = 0; id < 3; ++id) {
    kernel.spawn(lock_hold_unlock(kernel, mutex, Time::ns(10), log, id));
  }
  kernel.run();
  ASSERT_EQ(log.size(), 3u);
  // Grant times must be strictly separated by the hold time.
  EXPECT_EQ(log[0].second, Time::zero());
  EXPECT_EQ(log[1].second, Time::ns(10));
  EXPECT_EQ(log[2].second, Time::ns(20));
  EXPECT_FALSE(mutex.locked());
}

TEST(Mutex, UnlockWithoutLockThrows) {
  sim::Kernel kernel;
  sim::Mutex mutex{kernel, "m"};
  EXPECT_THROW(mutex.unlock(), std::logic_error);
}

TEST(Mutex, TryLock) {
  sim::Kernel kernel;
  sim::Mutex mutex{kernel, "m"};
  EXPECT_TRUE(mutex.try_lock());
  EXPECT_FALSE(mutex.try_lock());
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
}

// ----------------------------------------------------------------- Trace

TEST(Trace, DataEqualIgnoresTime) {
  sim::Trace a;
  sim::Trace b;
  a.record(Time::ns(1), "out", 10);
  a.record(Time::ns(2), "out", 20);
  b.record(Time::us(5), "out", 10);
  b.record(Time::us(9), "out", 20);
  EXPECT_TRUE(sim::Trace::data_equal(a, b));
  EXPECT_TRUE(symbad::test::traces_data_equal(a, b));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Trace, DataMismatchDetected) {
  sim::Trace a;
  sim::Trace b;
  a.record(Time::ns(1), "out", 10);
  b.record(Time::ns(1), "out", 11);
  EXPECT_FALSE(sim::Trace::data_equal(a, b));
  EXPECT_FALSE(symbad::test::traces_data_equal(a, b));
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Trace, ExtensionHelperAcceptsPrefixAndRejectsDivergence) {
  sim::Trace shorter;
  sim::Trace longer;
  shorter.record(Time::ns(1), "out", 10);
  longer.record(Time::ns(3), "out", 10);
  longer.record(Time::ns(4), "out", 20);
  EXPECT_TRUE(symbad::test::trace_extends(shorter, longer));
  EXPECT_FALSE(symbad::test::trace_extends(longer, shorter));  // shrank

  sim::Trace diverged;
  diverged.record(Time::ns(1), "out", 11);
  diverged.record(Time::ns(2), "out", 20);
  EXPECT_FALSE(symbad::test::trace_extends(shorter, diverged));
}

TEST(Trace, ChannelSeparation) {
  sim::Trace a;
  sim::Trace b;
  a.record(Time::ns(1), "x", 1);
  a.record(Time::ns(1), "y", 2);
  b.record(Time::ns(1), "x", 2);
  b.record(Time::ns(1), "y", 1);
  EXPECT_FALSE(sim::Trace::data_equal(a, b));
}

// ------------------------------------------------------------- Pipeline

namespace {

/// Three-stage pipeline: doubler -> +1 -> sink. Exercises chained FIFOs and
/// module structure, the level-1 idiom used by the face recognition model.
class Doubler : public sim::Module {
public:
  Doubler(sim::Kernel& k, sim::Fifo<int>& in, sim::Fifo<int>& out)
      : Module{k, "doubler"}, in_{&in}, out_{&out} {
    spawn(body());
  }

private:
  sim::Process body() {
    for (;;) {
      int v = co_await in_->read();
      if (v < 0) {
        co_await out_->write(v);
        co_return;
      }
      co_await out_->write(2 * v);
    }
  }
  sim::Fifo<int>* in_;
  sim::Fifo<int>* out_;
};

class AddOne : public sim::Module {
public:
  AddOne(sim::Kernel& k, sim::Fifo<int>& in, sim::Fifo<int>& out)
      : Module{k, "addone"}, in_{&in}, out_{&out} {
    spawn(body());
  }

private:
  sim::Process body() {
    for (;;) {
      int v = co_await in_->read();
      if (v < 0) {
        co_await out_->write(v);
        co_return;
      }
      co_await out_->write(v + 1);
    }
  }
  sim::Fifo<int>* in_;
  sim::Fifo<int>* out_;
};

}  // namespace

TEST(Pipeline, TwoStageTransformsStream) {
  sim::Kernel kernel;
  sim::Fifo<int> a{kernel, "a", 2};
  sim::Fifo<int> b{kernel, "b", 2};
  sim::Fifo<int> c{kernel, "c", 2};
  Doubler d{kernel, a, b};
  AddOne p{kernel, b, c};
  std::vector<int> out;

  auto feeder = [](sim::Fifo<int>& fifo) -> sim::Process {
    for (int i = 0; i < 50; ++i) co_await fifo.write(i);
    co_await fifo.write(-1);
  };
  auto sink = [](sim::Fifo<int>& fifo, std::vector<int>& sunk) -> sim::Process {
    for (;;) {
      int v = co_await fifo.read();
      if (v < 0) co_return;
      sunk.push_back(v);
    }
  };
  kernel.spawn(feeder(a));
  kernel.spawn(sink(c, out));
  kernel.run();

  ASSERT_EQ(out.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 2 * i + 1);
  EXPECT_EQ(kernel.live_processes(), 0u);
}

// --------------------------------------------------------------- SmallFn

TEST(SmallFn, InvokesInlineAndHeapTargets) {
  int hits = 0;
  sim::SmallFn small{[&hits] { ++hits; }};
  EXPECT_TRUE(static_cast<bool>(small));
  EXPECT_TRUE(small.is_inline());
  small();
  small();
  EXPECT_EQ(hits, 2);

  // A capture larger than the inline buffer degrades to one heap cell but
  // still works.
  struct Big {
    char payload[96] = {};
    int* counter = nullptr;
    void operator()() { ++*counter; }
  };
  static_assert(!sim::SmallFn::stores_inline<Big>);
  sim::SmallFn big{Big{{}, &hits}};
  EXPECT_FALSE(big.is_inline());
  big();
  EXPECT_EQ(hits, 3);
}

TEST(SmallFn, KernelCallbackShapesStayInline) {
  // The callback shapes the kernel itself schedules: coroutine-resume
  // thunks (one handle) and event-notification guards (pointer + counter).
  struct ResumeThunk {
    void* handle;
    void operator()() {}
  };
  struct NotifyGuard {
    void* event;
    std::uint64_t generation;
    void operator()() {}
  };
  static_assert(sim::SmallFn::stores_inline<ResumeThunk>);
  static_assert(sim::SmallFn::stores_inline<NotifyGuard>);
  SUCCEED();
}

TEST(SmallFn, MoveTransfersOwnershipExactlyOnce) {
  struct Counters {
    int constructed = 0;
    int destroyed = 0;
    int invoked = 0;
  } counters;
  struct Target {
    Counters* c;
    bool owner = true;
    explicit Target(Counters* counters) : c{counters} { ++c->constructed; }
    Target(Target&& other) noexcept : c{other.c} {
      other.owner = false;
      ++c->constructed;
    }
    ~Target() {
      if (owner) ++c->destroyed;
    }
    void operator()() { ++c->invoked; }
  };
  {
    sim::SmallFn a{Target{&counters}};
    sim::SmallFn b{std::move(a)};
    EXPECT_FALSE(static_cast<bool>(a));
    b();
    sim::SmallFn c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
  }
  EXPECT_EQ(counters.invoked, 2);
  EXPECT_EQ(counters.destroyed, 1);  // exactly one live owner at the end
}

// ------------------------------------- steady-state allocation behaviour
// Counting allocator shared with bench_level2_sim (support/alloc_counter.hpp
// defines the replaced global operator new for this binary).

TEST(Kernel, SteadyStateSchedulingIsAllocationFree) {
  // A ring of self-rescheduling timed events plus delta notifications —
  // the exact callback mix the platform models produce. After one warm-up
  // round the queue capacities and SmallFn inline storage make further
  // scheduling allocation-free.
  sim::Kernel kernel;
  sim::Event tick{kernel, "tick"};
  std::uint64_t fired = 0;
  auto waiter = [](sim::Event& event, std::uint64_t& count) -> sim::Process {
    for (;;) {
      co_await event;
      ++count;
    }
  };
  kernel.spawn(waiter(tick, fired));

  struct Hop {
    sim::Kernel* kernel;
    sim::Event* tick;
    std::uint64_t left;
    void operator()() {
      tick->notify();
      if (--left > 0) kernel->schedule(Time::ns(5), std::move(*this));
    }
  };
  static_assert(sim::SmallFn::stores_inline<Hop>);

  // Warm-up: grows every queue to its steady-state capacity.
  for (int i = 0; i < 32; ++i) {
    kernel.schedule(Time::ns(i + 1), Hop{&kernel, &tick, 50});
  }
  (void)kernel.run(Time::us(2));

  // Measured phase: the same traffic pattern must not touch the heap.
  symbad::test_support::arm_allocation_counter();
  for (int i = 0; i < 32; ++i) {
    kernel.schedule(Time::ns(i + 1), Hop{&kernel, &tick, 200});
  }
  const auto result = kernel.run();
  const auto allocations = symbad::test_support::disarm_allocation_counter();

  EXPECT_EQ(result, sim::RunResult::no_more_events);
  EXPECT_EQ(allocations, 0u) << "kernel hot path allocated during steady state";
  EXPECT_GT(fired, 0u);
}

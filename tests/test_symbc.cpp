// Tests for SymbC: mini-C lexer/parser and the reconfiguration-consistency
// analysis (src/symbc) plus the case-study SW sources (src/app).

#include <gtest/gtest.h>

#include "app/sw_source.hpp"
#include "support/test_util.hpp"
#include "symbc/checker.hpp"
#include "symbc/lexer.hpp"
#include "symbc/parser.hpp"

namespace symbc = symbad::symbc;
namespace app = symbad::app;

// ----------------------------------------------------------------- lexer

TEST(SymbcLexer, TokenisesIdentifiersNumbersPunct) {
  const auto tokens = symbc::tokenize("int x = 42; f(x);");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_TRUE(tokens[2].is_punct('='));
  EXPECT_EQ(tokens[3].kind, symbc::TokenKind::number);
  EXPECT_EQ(tokens.back().kind, symbc::TokenKind::end);
}

TEST(SymbcLexer, SkipsCommentsAndPreprocessor) {
  const auto tokens = symbc::tokenize(
      "#include <stdio.h>\n// line comment\n/* block\ncomment */ int y;");
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[0].line, 4);
}

TEST(SymbcLexer, UnterminatedCommentThrows) {
  EXPECT_THROW((void)symbc::tokenize("/* never closed"), std::runtime_error);
}

TEST(SymbcLexer, TracksLineNumbers) {
  const auto tokens = symbc::tokenize("a\nb\n\nc");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
}

TEST(SymbcLexer, RandomTokenStreamsRoundTrip) {
  // Lexer fuzz: any separator-delimited stream of identifiers, numbers and
  // punctuation must come back token-for-token, whatever whitespace or
  // comments sit between them.
  auto rng = symbad::test::rng("symbc_lexer_fuzz");
  const char* idents[] = {"x", "foo", "fpga_load", "_tmp9", "if0"};
  const char* puncts[] = {"(", ")", "{", "}", ";", ",", "=", "+", "<"};
  const char* seps[] = {" ", "\n", "\t", "/* c */ "};
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<std::string> expected;
    std::string source;
    const int len = static_cast<int>(rng.range(1, 40));
    for (int i = 0; i < len; ++i) {
      std::string text;
      switch (rng.below(3)) {
        case 0: text = idents[rng.below(5)]; break;
        case 1: text = std::to_string(rng.below(100000)); break;
        default: text = puncts[rng.below(9)]; break;
      }
      source += text;
      source += seps[rng.below(4)];
      expected.push_back(std::move(text));
    }
    const auto tokens = symbc::tokenize(source);
    ASSERT_EQ(tokens.size(), expected.size() + 1) << source;  // + end marker
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(tokens[i].text, expected[i]) << source;
    }
    EXPECT_EQ(tokens.back().kind, symbc::TokenKind::end);
  }
}

// ---------------------------------------------------------------- parser

TEST(SymbcParser, ParsesFunctionsAndCalls) {
  const auto program = symbc::parse_program(
      "void f() { g(); h(1, 2); }\nint main() { f(); return 0; }", "fpga_load");
  ASSERT_TRUE(program.has_function("f"));
  ASSERT_TRUE(program.has_function("main"));
  const auto& f = program.functions.at("f");
  ASSERT_EQ(f.body.stmts.size(), 2u);
  EXPECT_EQ(f.body.stmts[0]->kind, symbc::StmtKind::call);
  EXPECT_EQ(f.body.stmts[0]->callee, "g");
  EXPECT_EQ(f.body.stmts[1]->callee, "h");
}

TEST(SymbcParser, RecognisesReconfigureCalls) {
  const auto program =
      symbc::parse_program("void main() { fpga_load(config1); run(); }", "fpga_load");
  const auto& body = program.functions.at("main").body;
  ASSERT_EQ(body.stmts.size(), 2u);
  EXPECT_EQ(body.stmts[0]->kind, symbc::StmtKind::reconfigure);
  EXPECT_EQ(body.stmts[0]->context, "config1");
}

TEST(SymbcParser, ParsesControlFlow) {
  const auto program = symbc::parse_program(
      "void main() { if (x) { a(); } else { b(); } while (y) { c(); } }", "fpga_load");
  const auto& body = program.functions.at("main").body;
  ASSERT_EQ(body.stmts.size(), 2u);
  EXPECT_EQ(body.stmts[0]->kind, symbc::StmtKind::if_else);
  EXPECT_TRUE(body.stmts[0]->has_else);
  EXPECT_EQ(body.stmts[1]->kind, symbc::StmtKind::loop);
}

TEST(SymbcParser, CollectsCallsEmbeddedInExpressions) {
  const auto program = symbc::parse_program(
      "void main() { int d = dist(a) + dist(b); if (check(d)) { act(); } }",
      "fpga_load");
  const auto& body = program.functions.at("main").body;
  // dist, dist, check (condition call precedes the if), then the if.
  ASSERT_EQ(body.stmts.size(), 4u);
  EXPECT_EQ(body.stmts[0]->callee, "dist");
  EXPECT_EQ(body.stmts[1]->callee, "dist");
  EXPECT_EQ(body.stmts[2]->callee, "check");
  EXPECT_EQ(body.stmts[3]->kind, symbc::StmtKind::if_else);
}

TEST(SymbcParser, ForLoopDesugarsToLoop) {
  const auto program = symbc::parse_program(
      "void main() { for (i = 0; cond(i); step(i)) { body(); } }", "fpga_load");
  const auto& body = program.functions.at("main").body;
  // cond() runs before the loop, then the loop (containing cond, body, step).
  ASSERT_EQ(body.stmts.size(), 2u);
  EXPECT_EQ(body.stmts[0]->callee, "cond");
  EXPECT_EQ(body.stmts[1]->kind, symbc::StmtKind::loop);
  EXPECT_EQ(body.stmts[1]->body.stmts.size(), 3u);
}

TEST(SymbcParser, SyntaxErrorsThrowWithLine) {
  EXPECT_THROW((void)symbc::parse_program("void f( {", "fpga_load"),
               std::runtime_error);
  EXPECT_THROW((void)symbc::parse_program("void f() { if x) {} }", "fpga_load"),
               std::runtime_error);
}

TEST(SymbcParser, PrototypesAndGlobalsSkipped) {
  const auto program = symbc::parse_program(
      "int counter;\nvoid helper();\nvoid main() { helper(); }", "fpga_load");
  EXPECT_EQ(program.functions.size(), 1u);
  EXPECT_TRUE(program.has_function("main"));
}

// --------------------------------------------------------------- checker

namespace {

symbc::ConfigSpec two_context_spec() {
  symbc::ConfigSpec spec;
  spec.contexts["config1"] = {"dist"};
  spec.contexts["config2"] = {"root"};
  return spec;
}

}  // namespace

TEST(SymbcChecker, CertifiesStraightLineCorrectProgram) {
  const auto result = symbc::check_source(
      "void main() { fpga_load(config2); root(); fpga_load(config1); dist(); }",
      two_context_spec());
  EXPECT_TRUE(result.consistent);
  ASSERT_EQ(result.certificate.size(), 2u);
  EXPECT_EQ(result.certificate[0].function, "root");
  EXPECT_TRUE(result.violations.empty());
}

TEST(SymbcChecker, DetectsCallBeforeAnyLoad) {
  const auto result =
      symbc::check_source("void main() { root(); }", two_context_spec());
  EXPECT_FALSE(result.consistent);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].function, "root");
  EXPECT_EQ(result.violations[0].loaded_context, symbc::kNoContext);
}

TEST(SymbcChecker, DetectsWrongContext) {
  const auto result = symbc::check_source(
      "void main() { fpga_load(config1); root(); }", two_context_spec());
  EXPECT_FALSE(result.consistent);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].loaded_context, "config1");
  EXPECT_GT(result.violations[0].loaded_at_line, 0);
}

TEST(SymbcChecker, BranchesMergePossibilities) {
  // On one path config2 is loaded, on the other config1: calling root() after
  // the merge is only *possibly* wrong — must be reported.
  const auto result = symbc::check_source(
      "void main() {"
      "  if (c) { fpga_load(config2); } else { fpga_load(config1); }"
      "  root();"
      "}",
      two_context_spec());
  EXPECT_FALSE(result.consistent);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].loaded_context, "config1");
}

TEST(SymbcChecker, BothBranchesLoadingCorrectContextIsFine) {
  const auto result = symbc::check_source(
      "void main() {"
      "  if (c) { fpga_load(config2); } else { fpga_load(config2); }"
      "  root();"
      "}",
      two_context_spec());
  EXPECT_TRUE(result.consistent);
}

TEST(SymbcChecker, LoopBodyStateFlowsBackAround) {
  // First iteration is fine; the second sees config1 from the loop tail.
  const auto result = symbc::check_source(
      "void main() {"
      "  fpga_load(config2);"
      "  while (more()) {"
      "    root();"
      "    fpga_load(config1);"
      "    dist();"
      "  }"
      "}",
      two_context_spec());
  EXPECT_FALSE(result.consistent);
  bool found = false;
  for (const auto& v : result.violations) {
    if (v.function == "root" && v.loaded_context == "config1") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SymbcChecker, ReloadInsideLoopIsConsistent) {
  const auto result = symbc::check_source(
      "void main() {"
      "  while (more()) {"
      "    fpga_load(config2); root();"
      "    fpga_load(config1); dist();"
      "  }"
      "}",
      two_context_spec());
  EXPECT_TRUE(result.consistent);
}

TEST(SymbcChecker, InterproceduralAnalysis) {
  const auto result = symbc::check_source(
      "void use_root() { root(); }"
      "void main() { fpga_load(config2); use_root(); }",
      two_context_spec());
  EXPECT_TRUE(result.consistent);

  const auto bad = symbc::check_source(
      "void use_root() { root(); }"
      "void main() { fpga_load(config1); use_root(); }",
      two_context_spec());
  EXPECT_FALSE(bad.consistent);
}

TEST(SymbcChecker, FunctionSettingContextPropagates) {
  const auto result = symbc::check_source(
      "void prepare() { fpga_load(config2); }"
      "void main() { prepare(); root(); }",
      two_context_spec());
  EXPECT_TRUE(result.consistent);
}

TEST(SymbcChecker, RecursionWidensConservatively) {
  // Recursive function: the analysis must terminate and err on the safe
  // side (reporting a possible violation).
  const auto result = symbc::check_source(
      "void spin() { if (c) { fpga_load(config1); spin(); } }"
      "void main() { fpga_load(config2); spin(); root(); }",
      two_context_spec());
  EXPECT_FALSE(result.consistent);
}

TEST(SymbcChecker, UnknownContextThrows) {
  EXPECT_THROW((void)symbc::check_source("void main() { fpga_load(config9); }",
                                         two_context_spec()),
               std::invalid_argument);
}

TEST(SymbcChecker, MissingEntryThrows) {
  EXPECT_THROW((void)symbc::check_source("void f() {}", two_context_spec()),
               std::invalid_argument);
}

// ------------------------------------------------- case-study SW sources

TEST(FaceSw, CorrectProgramCertified) {
  const auto result =
      symbc::check_source(app::face_sw_correct(), app::face_config_spec());
  EXPECT_TRUE(result.consistent) << (result.violations.empty()
                                         ? ""
                                         : result.violations[0].to_string());
  EXPECT_GE(result.certificate.size(), 2u);
}

TEST(FaceSw, MissingReloadCaught) {
  const auto result =
      symbc::check_source(app::face_sw_missing_reload(), app::face_config_spec());
  EXPECT_FALSE(result.consistent);
  bool root_violation = false;
  for (const auto& v : result.violations) {
    if (v.function == "root_accel" && v.loaded_context == "config1") {
      root_violation = true;
    }
  }
  EXPECT_TRUE(root_violation);
}

TEST(FaceSw, WrongContextCaught) {
  const auto result =
      symbc::check_source(app::face_sw_wrong_context(), app::face_config_spec());
  EXPECT_FALSE(result.consistent);
}

TEST(FaceSw, CallBeforeLoadCaught) {
  const auto result =
      symbc::check_source(app::face_sw_call_before_load(), app::face_config_spec());
  EXPECT_FALSE(result.consistent);
  ASSERT_FALSE(result.violations.empty());
  EXPECT_EQ(result.violations[0].loaded_context, symbc::kNoContext);
}

TEST(FaceSw, ScaledProgramStaysConsistent) {
  const auto result = symbc::check_source(app::face_sw_scaled(30),
                                          app::face_config_spec());
  EXPECT_TRUE(result.consistent);
}

// Tests for the verification support library (src/verif): coverage
// accounting (coverage.cpp), the bit fault model (fault.hpp) and the
// deterministic RNG (rng.hpp) that every stochastic component relies on.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "app/face_system.hpp"
#include "core/system_model.hpp"
#include "gen/gen.hpp"
#include "gen/runtime.hpp"
#include "media/database.hpp"
#include "support/test_util.hpp"
#include "verif/coverage.hpp"
#include "verif/fault.hpp"
#include "verif/rng.hpp"

namespace gen = symbad::gen;
namespace verif = symbad::verif;

// ------------------------------------------------------------- coverage

TEST(Coverage, UnexecutedPointsCountAgainstCoverage) {
  verif::CoverageDb db;
  auto& m = db.module("dut");
  m.declare_statements(4);
  m.declare_branches(2);
  m.declare_conditions(1);

  // Nothing executed yet: totals visible, nothing covered.
  auto r = db.report();
  EXPECT_EQ(r.statement_total, 4);
  EXPECT_EQ(r.branch_total, 2);
  EXPECT_EQ(r.condition_total, 1);
  EXPECT_EQ(r.statement_covered, 0);
  EXPECT_DOUBLE_EQ(r.statement_percent(), 0.0);
  EXPECT_DOUBLE_EQ(r.overall_percent(), 0.0);
}

TEST(Coverage, BranchesAndConditionsNeedBothOutcomes) {
  verif::CovModule m{"dut"};
  m.declare_branches(2);
  m.declare_conditions(1);

  m.branch(0, true);
  EXPECT_EQ(m.branches_covered(), 0);  // not-taken outcome still missing
  m.branch(0, false);
  EXPECT_EQ(m.branches_covered(), 1);
  m.branch(1, false);
  EXPECT_EQ(m.branches_covered(), 1);  // branch 1 only seen one way

  EXPECT_FALSE(m.condition(0, false));
  EXPECT_EQ(m.conditions_covered(), 0);
  EXPECT_TRUE(m.condition(0, true));
  EXPECT_EQ(m.conditions_covered(), 1);
}

TEST(Coverage, StatementHitsAccumulateAndReset) {
  verif::CovModule m{"dut"};
  m.declare_statements(2);
  m.statement(0);
  m.statement(0);
  EXPECT_EQ(m.statement_hits(0), 2u);
  EXPECT_EQ(m.statement_hits(1), 0u);
  EXPECT_EQ(m.statements_covered(), 1);

  m.reset_hits();
  EXPECT_EQ(m.statement_hits(0), 0u);
  EXPECT_EQ(m.statements_covered(), 0);
  EXPECT_EQ(m.statement_points(), 2);  // declarations survive a reset

  EXPECT_THROW((void)m.statement_hits(5), std::out_of_range);
}

TEST(Coverage, OutOfRangeHitsAreIgnoredNotFatal) {
  verif::CovModule m{"dut"};
  m.declare_statements(1);
  m.statement(-1);
  m.statement(7);
  m.branch(0, true);     // no branches declared
  m.condition(3, true);  // no conditions declared
  EXPECT_EQ(m.statements_covered(), 0);
  EXPECT_EQ(m.branches_covered(), 0);
  EXPECT_EQ(m.conditions_covered(), 0);
}

TEST(Coverage, ReportAggregatesAcrossModules) {
  verif::CoverageDb db;
  auto& a = db.module("a");
  a.declare_statements(2);
  a.statement(0);
  a.statement(1);
  auto& b = db.module("b");
  b.declare_statements(2);
  b.statement(0);

  EXPECT_EQ(&db.module("a"), &a);  // stable handles
  const auto r = db.report();
  EXPECT_EQ(r.statement_total, 4);
  EXPECT_EQ(r.statement_covered, 3);
  EXPECT_DOUBLE_EQ(r.statement_percent(), 75.0);

  db.reset_hits();
  EXPECT_EQ(db.report().statement_covered, 0);
  EXPECT_EQ(db.report().statement_total, 4);
}

TEST(Coverage, EmptyReportIsVacuouslyComplete) {
  verif::CoverageDb db;
  EXPECT_DOUBLE_EQ(db.report().overall_percent(), 100.0);
  EXPECT_DOUBLE_EQ(db.report().statement_percent(), 100.0);
}

TEST(Coverage, ActiveDatabaseScopesNestAndRestore) {
  EXPECT_EQ(verif::CoverageDb::active(), nullptr);
  EXPECT_EQ(verif::CoverageDb::active_module("m"), nullptr);

  verif::CoverageDb outer;
  {
    verif::CoverageDb::Scope outer_scope{outer};
    EXPECT_EQ(verif::CoverageDb::active(), &outer);
    verif::CoverageDb inner;
    {
      verif::CoverageDb::Scope inner_scope{inner};
      EXPECT_EQ(verif::CoverageDb::active(), &inner);
      ASSERT_NE(verif::CoverageDb::active_module("m"), nullptr);
    }
    EXPECT_EQ(verif::CoverageDb::active(), &outer);
  }
  EXPECT_EQ(verif::CoverageDb::active(), nullptr);
}

TEST(Coverage, NullHandleWrappersAreTransparent) {
  EXPECT_TRUE(verif::cov_branch(nullptr, 0, true));
  EXPECT_FALSE(verif::cov_cond(nullptr, 0, false));
  verif::cov_stmt(nullptr, 0);  // must not crash

  verif::CovModule m{"dut"};
  m.declare_statements(1);
  m.declare_branches(1);
  m.declare_conditions(1);
  verif::cov_stmt(&m, 0);
  EXPECT_FALSE(verif::cov_branch(&m, 0, false));
  EXPECT_TRUE(verif::cov_cond(&m, 0, true));
  EXPECT_EQ(m.statements_covered(), 1);
}

TEST(Coverage, PointKindNamesAreStable) {
  EXPECT_STREQ(verif::to_string(verif::PointKind::statement), "statement");
  EXPECT_STREQ(verif::to_string(verif::PointKind::branch), "branch");
  EXPECT_STREQ(verif::to_string(verif::PointKind::condition), "condition");
}

// ------------------------------------------------------------ bit faults

TEST(Fault, ApplyTargetsOnlyItsWordAndBit) {
  const verif::BitFault sa1{"stage", verif::PortDirection::output, 2, 3, true};
  EXPECT_EQ(verif::apply_bit_fault(0x00u, 2, sa1), 0x08u);
  EXPECT_EQ(verif::apply_bit_fault(0xFFu, 2, sa1), 0xFFu);
  EXPECT_EQ(verif::apply_bit_fault(0x00u, 1, sa1), 0x00u);  // other word

  const verif::BitFault sa0{"stage", verif::PortDirection::output, 0, 0, false};
  EXPECT_EQ(verif::apply_bit_fault(0xFFu, 0, sa0), 0xFEu);
  EXPECT_EQ(verif::apply_bit_fault(0xFEu, 0, sa0), 0xFEu);
}

TEST(Fault, EnumerationIsCompleteAndDistinct) {
  const auto faults =
      verif::enumerate_port_faults("s", verif::PortDirection::input, 3, 4);
  EXPECT_EQ(faults.size(), 3u * 4u * 2u);
  std::set<std::string> names;
  for (const auto& f : faults) names.insert(f.to_string());
  EXPECT_EQ(names.size(), faults.size());  // all distinct
  EXPECT_EQ(faults.front().to_string(), "s.in[0]:0/SA0");
  EXPECT_EQ(faults.back().to_string(), "s.in[2]:3/SA1");
}

TEST(Fault, GradePercentHandlesEmptyList) {
  verif::FaultGrade none;
  EXPECT_DOUBLE_EQ(none.percent(), 100.0);
  verif::FaultGrade half{10, 5};
  EXPECT_DOUBLE_EQ(half.percent(), 50.0);
}

TEST(Fault, InjectionCampaignIsDeterministicUnderFixedSeed) {
  // The ATPG's fault grading depends on (fault pick, stimulus) pairs drawn
  // from the shared RNG; a fixed seed must give a bit-identical campaign.
  const auto faults =
      verif::enumerate_port_faults("dut", verif::PortDirection::output, 4, 8);
  const auto campaign = [&faults](std::uint64_t seed) {
    verif::Rng rng{seed};
    std::uint64_t fingerprint = 1469598103934665603ULL;
    verif::FaultGrade grade;
    for (int trial = 0; trial < 200; ++trial) {
      const auto& fault = faults[rng.below(faults.size())];
      const auto value = static_cast<std::uint32_t>(rng.next());
      const int word = static_cast<int>(rng.below(4));
      const auto faulty = verif::apply_bit_fault(value, word, fault);
      ++grade.total;
      if (faulty != value) ++grade.detected;
      fingerprint ^= faulty + 0x9E3779B97F4A7C15ULL + (fingerprint << 6);
    }
    return std::pair<std::uint64_t, std::size_t>{fingerprint, grade.detected};
  };

  const auto a = campaign(42);
  const auto b = campaign(42);
  EXPECT_EQ(a, b);
  // ...and the seed genuinely matters (different stream, different picks).
  const auto c = campaign(43);
  EXPECT_NE(a.first, c.first);
}

TEST(Fault, RngStreamsAreCrossPlatformPinned) {
  // Golden values: SplitMix64 output must never drift across platforms or
  // refactors — every deterministic campaign in the repo depends on it.
  verif::Rng rng{0};
  EXPECT_EQ(rng.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(rng.next(), 0x6E789E6AA1B965F4ULL);
  verif::Rng forked = verif::Rng{0}.fork(1);
  EXPECT_NE(forked.next(), verif::Rng{0}.next());
}

// ---------------------------------------------------------- tmp-dir use

class CoverageArtifacts : public symbad::test::TmpDirTest {};

TEST_F(CoverageArtifacts, ReportRoundTripsThroughScratchFile) {
  verif::CoverageDb db;
  auto& m = db.module("pipeline");
  m.declare_statements(3);
  m.statement(0);
  m.statement(2);

  const auto r = db.report();
  const auto path = tmp_dir() / "coverage.txt";
  {
    std::ofstream out{path};
    out << r.statement_covered << "/" << r.statement_total << "\n";
  }
  std::ifstream in{path};
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "2/3");
}

// ----------------------------------------- end-to-end kernel coverage

// The production media kernels declare statement/branch/condition points
// (Laerte++-style); the level-2/3 stage execution path fetches its module
// handle from the active database. Running the executable platform model
// under a coverage scope must therefore light up the pipeline end-to-end —
// no test-only shims involved.
TEST(Coverage, Level2SimulationCoversMediaKernelsEndToEnd) {
  const auto db = symbad::media::FaceDatabase::enroll(3, 2);
  auto graph = symbad::app::face_task_graph(db);
  const auto profile = symbad::app::profile_reference(db, 2);
  symbad::app::annotate_from_profile(graph, profile, 2);

  verif::CoverageDb cov;
  {
    verif::CoverageDb::Scope scope{cov};
    symbad::app::FaceStageRuntime runtime{db};
    symbad::core::SystemModel level2{graph,
                                     symbad::app::paper_level2_partition(graph),
                                     runtime,
                                     {},
                                     symbad::core::ModelLevel::timed_platform};
    const auto report = level2.run(2);
    ASSERT_GT(report.frames_per_second, 0.0);
  }

  const auto r = cov.report();
  EXPECT_GT(r.statement_total, 0);
  EXPECT_GT(r.statement_covered, 0);
  EXPECT_GT(r.branch_total, 0);
  EXPECT_GT(r.branch_covered, 0);
  EXPECT_GT(r.overall_percent(), 0.0);
  // Every instrumented pipeline stage the graph executes shows hits.
  for (const char* stage : {"BAY", "EROSION", "ROOT", "EDGE", "DISTANCE"}) {
    ASSERT_TRUE(cov.modules().contains(stage)) << stage;
    EXPECT_GT(cov.modules().at(stage).statements_covered(), 0) << stage;
  }
}

TEST(Coverage, MergeAccumulatesHitsAndUnionsDeclarations) {
  verif::CoverageDb a;
  auto& ma = a.module("dut");
  ma.declare_statements(2);
  ma.declare_branches(1);
  ma.statement(0);
  ma.branch(0, true);

  verif::CoverageDb b;
  auto& mb = b.module("dut");
  mb.declare_statements(3);  // wider declaration wins
  mb.declare_branches(1);
  mb.statement(0);
  mb.statement(2);
  mb.branch(0, false);
  auto& other = b.module("other");
  other.declare_statements(1);
  other.statement(0);

  a.merge_from(b);
  const auto& merged = a.modules().at("dut");
  EXPECT_EQ(merged.statement_points(), 3);
  EXPECT_EQ(merged.statement_hits(0), 2u);  // hits sum across databases
  EXPECT_EQ(merged.statement_hits(2), 1u);
  EXPECT_EQ(merged.statements_covered(), 2);
  // Branch covered only after the merge supplied both outcomes.
  EXPECT_EQ(merged.branches_covered(), 1);
  EXPECT_TRUE(a.modules().contains("other"));
  EXPECT_EQ(a.report().statement_total, 4);
}

TEST(Coverage, GeneratedPlatformCoverageIsIndependentOfMergeSplit) {
  // The campaign merge contract on generated workloads: two generated
  // platforms instrumented into one shared database must report exactly
  // what two per-worker databases merged after the fact report — the
  // split across workers is invisible.
  const gen::SweepConfig cfg;
  const auto p0 = gen::generate_platform(cfg.seed_at(0), gen::SizeTier::small);
  const auto p1 = gen::generate_platform(cfg.seed_at(1), gen::SizeTier::medium);

  const auto simulate = [](const gen::GeneratedPlatform& p) {
    gen::SyntheticRuntime runtime{p.graph, p.seed};
    symbad::core::SystemModel level1{p.graph, p.partition, runtime, p.params,
                                     symbad::core::ModelLevel::untimed_functional};
    (void)level1.run(3);
  };

  verif::CoverageDb shared;
  {
    verif::CoverageDb::Scope scope{shared};
    simulate(p0);
    simulate(p1);
  }

  verif::CoverageDb worker0;
  {
    verif::CoverageDb::Scope scope{worker0};
    simulate(p0);
  }
  verif::CoverageDb worker1;
  {
    verif::CoverageDb::Scope scope{worker1};
    simulate(p1);
  }
  worker0.merge_from(worker1);

  const auto want = shared.report();
  const auto got = worker0.report();
  EXPECT_GT(want.statement_total, 0);
  EXPECT_EQ(got.statement_total, want.statement_total);
  EXPECT_EQ(got.statement_covered, want.statement_covered);
  EXPECT_EQ(got.branch_total, want.branch_total);
  EXPECT_EQ(got.branch_covered, want.branch_covered);
  // Hit counts, not just covered-point counts, must match per statement.
  const auto& a_mod = shared.modules().at("gen.synthetic");
  const auto& b_mod = worker0.modules().at("gen.synthetic");
  ASSERT_EQ(a_mod.statement_points(), b_mod.statement_points());
  for (int i = 0; i < a_mod.statement_points(); ++i) {
    EXPECT_EQ(a_mod.statement_hits(i), b_mod.statement_hits(i)) << i;
  }
}
